//! Crash-safe append-only persistence primitives.
//!
//! Every durable JSONL surface in the harness — the supervisor's
//! run-manifests and the experiment service's result-store shards —
//! writes through this module so that all of them share one failure
//! discipline:
//!
//! * **Per-record CRC32 framing** — each appended line carries a CRC32
//!   of its payload ([`frame_record`]). Readers classify every line as
//!   intact, legacy (pre-framing, no checksum), or corrupt
//!   ([`parse_framed`]), so a torn tail from a `SIGKILL` mid-write and a
//!   flipped bit in the middle of a shard are *detected*, never parsed
//!   into a wrong result.
//! * **Typed fsync cadence** — [`FsyncPolicy`] decides when appends are
//!   pushed through to stable storage (`Always` / `EveryN` / `Never`),
//!   instead of every writer improvising its own flush story.
//! * **Deterministic IO fault injection** — [`IoFaultPlan`] injects
//!   `EIO`, `ENOSPC`, and torn-writes-after-k-bytes at chosen record
//!   indices (torn offsets seeded through SplitMix64, the same generator
//!   the compute [`FaultPlan`](crate::FaultPlan) uses), so durability
//!   claims are exercised by tests rather than asserted in comments.
//! * **Atomic replacement** — [`write_atomic`] routes
//!   compaction/snapshot rewrites through write-temp + fsync +
//!   atomic-rename, so a reader never observes a half-rewritten file.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The framed-record separator: payload, one tab, eight lowercase hex
/// CRC32 digits. A tab never occurs inside the JSON payloads the
/// harness writes, so the split is unambiguous, and `cut -f1` still
/// yields plain JSONL for ad-hoc tooling.
const FRAME_SEP: char = '\t';

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib polynomial) — table-driven, no deps.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum in every framed record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ CRC32_TABLE[((c ^ b as u32) & 0xff) as usize];
    }
    !c
}

/// SplitMix64 — the harness's shared deterministic scrambler (also used
/// by [`FaultPlan::seeded_panic`](crate::FaultPlan::seeded_panic)).
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

/// Frame one record payload (no trailing newline): append the CRC32
/// suffix that lets readers detect torn or corrupted lines.
pub fn frame_record(payload: &str) -> String {
    format!("{payload}{FRAME_SEP}{:08x}", crc32(payload.as_bytes()))
}

/// One line of a durable JSONL file, as a reader sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framed<'a> {
    /// A framed record whose CRC32 verified: the write completed.
    Valid(&'a str),
    /// An unframed line from a pre-framing writer; content-level parsing
    /// decides whether it is usable.
    Legacy(&'a str),
    /// A framed record whose CRC32 did not verify: a torn write (when it
    /// is the final line) or interior corruption (anywhere else).
    Corrupt,
}

/// Classify one line: CRC-verified payload, legacy unframed line, or
/// corruption.
pub fn parse_framed(line: &str) -> Framed<'_> {
    let Some((payload, suffix)) = line.rsplit_once(FRAME_SEP) else {
        return Framed::Legacy(line);
    };
    if suffix.len() != 8 || !suffix.bytes().all(|b| b.is_ascii_hexdigit()) {
        // A tab without a CRC suffix never comes from our writer: the
        // line was mangled.
        return Framed::Corrupt;
    }
    match u32::from_str_radix(suffix, 16) {
        Ok(want) if crc32(payload.as_bytes()) == want => Framed::Valid(payload),
        _ => Framed::Corrupt,
    }
}

// ---------------------------------------------------------------------
// Fsync policy
// ---------------------------------------------------------------------

/// When appends are pushed through to stable storage (`fsync`), as a
/// typed policy instead of per-writer improvisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — every acknowledged record survives a
    /// crash (the default for manifests and result shards).
    #[default]
    Always,
    /// `fsync` every N records — bounded data loss, amortized syscalls.
    EveryN(u32),
    /// Never `fsync` explicitly — the OS decides (fastest, weakest).
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI token grammar: `always`, `never`, or `every:<n>`.
    ///
    /// # Errors
    ///
    /// Returns a display-ready message on unknown tokens or `every:0`.
    pub fn from_token(token: &str) -> Result<FsyncPolicy, String> {
        match token {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => {
                let n: u32 = token
                    .strip_prefix("every:")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| {
                        format!("fsync policy must be always|never|every:<n>, got '{token}'")
                    })?;
                if n == 0 {
                    return Err("fsync policy every:<n> needs n >= 1".to_string());
                }
                Ok(FsyncPolicy::EveryN(n))
            }
        }
    }

    /// The CLI token for this policy (inverse of [`Self::from_token`]).
    pub fn token(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every:{n}"),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

// ---------------------------------------------------------------------
// Injectable IO faults
// ---------------------------------------------------------------------

/// One kind of injectable IO fault on the durable write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// Fail one append with `EIO` (transient: nothing is written).
    Eio,
    /// Fail every append from the trigger index on with `ENOSPC` — a
    /// full disk does not un-fill itself; this is the persistent-failure
    /// case that must flip a store into degraded read-only mode.
    Enospc,
    /// Write only a seeded prefix of the record, then fail — the
    /// SIGKILL-mid-write artifact, produced deterministically.
    Torn,
}

impl IoFaultKind {
    /// Stable token used by the CLI `--chaos` grammar.
    pub fn token(&self) -> &'static str {
        match self {
            IoFaultKind::Eio => "eio",
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::Torn => "io-torn",
        }
    }

    /// Parse an IO-fault token (inverse of [`Self::token`]).
    ///
    /// # Errors
    ///
    /// Returns a display-ready message naming the accepted tokens.
    pub fn from_token(token: &str) -> Result<IoFaultKind, String> {
        match token {
            "eio" => Ok(IoFaultKind::Eio),
            "enospc" => Ok(IoFaultKind::Enospc),
            "io-torn" => Ok(IoFaultKind::Torn),
            other => Err(format!(
                "io fault must be eio|enospc|io-torn, got '{other}'"
            )),
        }
    }
}

/// A deterministic plan of IO faults, by durable-record index (the Nth
/// record appended through one [`DurableAppender`] group).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    faults: Vec<(u64, IoFaultKind)>,
    seed: u64,
}

impl IoFaultPlan {
    /// An empty plan: no faults.
    pub fn none() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// Add a fault firing at record index `index` (builder style).
    pub fn inject(mut self, index: u64, kind: IoFaultKind) -> IoFaultPlan {
        self.faults.push((index, kind));
        self
    }

    /// Set the seed scrambling torn-write offsets.
    pub fn seeded(mut self, seed: u64) -> IoFaultPlan {
        self.seed = seed;
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned `(record index, fault)` pairs, in insertion order.
    pub fn entries(&self) -> &[(u64, IoFaultKind)] {
        &self.faults
    }

    /// The fault that applies to record `index`: an exact-index match
    /// for the one-shot kinds, or any `Enospc` at or before `index`
    /// (a full disk stays full).
    pub fn fault_for(&self, index: u64) -> Option<IoFaultKind> {
        if let Some((_, k)) = self
            .faults
            .iter()
            .find(|(i, k)| *i == index && *k != IoFaultKind::Enospc)
        {
            return Some(*k);
        }
        self.faults
            .iter()
            .find(|(i, k)| *k == IoFaultKind::Enospc && *i <= index)
            .map(|(_, k)| *k)
    }

    /// How many bytes of an `len`-byte record a torn write at `index`
    /// leaves behind: at least 1 and strictly less than `len`, seeded so
    /// the same plan tears the same way every run.
    pub fn torn_prefix(&self, index: u64, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        1 + (splitmix64(self.seed ^ index) % (len as u64 - 1)) as usize
    }
}

/// `ENOSPC` as an `io::Error` (raw OS errno 28 on Unix), used both by
/// the injector and by degraded-mode detection.
pub fn enospc_error() -> io::Error {
    io::Error::from_raw_os_error(28)
}

/// Whether an IO error is `ENOSPC` — the persistent write failure that
/// must flip a store into degraded read-only mode immediately.
pub fn is_enospc(err: &io::Error) -> bool {
    err.raw_os_error() == Some(28)
}

// ---------------------------------------------------------------------
// Durable appender
// ---------------------------------------------------------------------

/// An append-mode writer of framed records with a typed fsync cadence
/// and an injectable fault hook — the seam under the result store's
/// shards and the supervisor's run-manifests.
#[derive(Debug)]
pub struct DurableAppender {
    path: PathBuf,
    file: File,
    policy: FsyncPolicy,
    /// Records appended since the last explicit sync.
    unsynced: u32,
    /// Records successfully appended through this appender.
    records: u64,
    /// Explicit fsyncs issued.
    fsyncs: u64,
}

impl DurableAppender {
    /// Open `path` for appending (created if absent).
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the file cannot be opened.
    pub fn open(path: &Path, policy: FsyncPolicy) -> io::Result<DurableAppender> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(DurableAppender {
            path: path.to_path_buf(),
            file,
            policy,
            unsynced: 0,
            records: 0,
            fsyncs: 0,
        })
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lifetime `(records appended, fsyncs issued)` through this handle.
    pub fn stats(&self) -> (u64, u64) {
        (self.records, self.fsyncs)
    }

    /// Append one framed record (payload + CRC32 + newline), applying
    /// `fault` if one is scheduled for this write, then fsync per
    /// policy. Returns whether this append issued an fsync.
    ///
    /// # Errors
    ///
    /// Returns the write/sync error; an injected `Torn` fault leaves a
    /// partial record on disk (exactly what a kill mid-write leaves) and
    /// reports `EIO`, an injected `Eio` writes nothing, and `Enospc`
    /// reports errno 28 without writing.
    pub fn append(
        &mut self,
        payload: &str,
        fault: Option<IoFaultKind>,
        torn_prefix: usize,
    ) -> io::Result<bool> {
        let mut line = frame_record(payload);
        line.push('\n');
        match fault {
            Some(IoFaultKind::Eio) => {
                return Err(io::Error::other("injected IO fault: EIO on append"));
            }
            Some(IoFaultKind::Enospc) => return Err(enospc_error()),
            Some(IoFaultKind::Torn) => {
                let k = torn_prefix.clamp(1, line.len().saturating_sub(1));
                self.file.write_all(&line.as_bytes()[..k])?;
                let _ = self.file.sync_data();
                return Err(io::Error::other(format!(
                    "injected IO fault: torn write after {k} bytes"
                )));
            }
            None => {}
        }
        self.file.write_all(line.as_bytes())?;
        self.records += 1;
        self.unsynced += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        };
        if due {
            self.file.sync_data()?;
            self.fsyncs += 1;
            self.unsynced = 0;
        }
        Ok(due)
    }
}

/// Truncate a torn final record — bytes after the last newline, the
/// artifact a kill (or injected torn write) mid-append leaves — so the
/// next append starts on a fresh line instead of concatenating onto the
/// partial one. Returns how many bytes were dropped (0 for a missing,
/// empty, or newline-terminated file).
///
/// # Errors
///
/// Returns the underlying error if the file exists but cannot be read
/// or truncated.
pub fn truncate_torn_tail(path: &Path) -> io::Result<u64> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(0);
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let dropped = (bytes.len() - keep) as u64;
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(keep as u64)?;
    file.sync_data()?;
    Ok(dropped)
}

// ---------------------------------------------------------------------
// Atomic replacement
// ---------------------------------------------------------------------

/// Replace `path` with `bytes` atomically: write a sibling temp file,
/// fsync it, rename over `path`, and best-effort fsync the directory so
/// the rename itself is durable. A reader never observes a partial
/// rewrite — it sees the old file or the new one.
///
/// # Errors
///
/// Returns the underlying error from the temp write, sync, or rename
/// (the temp file is cleaned up best-effort on failure).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    } else if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data();
        }
    }
    result
}

// ---------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------

/// The supervisor's retry delay for attempt `attempt` (1-based): capped
/// exponential backoff `min(cap, base × 2^(attempt-1))` plus a
/// deterministic jitter in `[0, delay/4]` derived from `seed` and the
/// attempt number — workers retrying the same transient failure spread
/// out instead of stampeding in lockstep, and the same seed always
/// produces the same schedule.
pub fn backoff_delay(base: Duration, cap: Duration, attempt: u32, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(20));
    let delay = exp.min(cap);
    let quarter = (delay.as_nanos() / 4) as u64;
    let jitter = if quarter == 0 {
        0
    } else {
        splitmix64(seed ^ u64::from(attempt)) % (quarter + 1)
    };
    delay + Duration::from_nanos(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC32 check: crc32("123456789") == 0xcbf43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn framing_round_trips_and_detects_damage() {
        let payload = r#"{"hash":"abcd","report":{"x":1}}"#;
        let line = frame_record(payload);
        assert_eq!(parse_framed(&line), Framed::Valid(payload));
        // A flipped payload bit breaks the CRC.
        let mut bad = line.clone().into_bytes();
        bad[3] ^= 0x40;
        let bad = String::from_utf8(bad).unwrap();
        assert_eq!(parse_framed(&bad), Framed::Corrupt);
        // A truncated line (torn write) breaks the CRC or the frame.
        for cut in 1..line.len() {
            match parse_framed(&line[..cut]) {
                Framed::Valid(p) => panic!("torn prefix of {cut} bytes parsed as valid: {p:?}"),
                Framed::Legacy(_) | Framed::Corrupt => {}
            }
        }
        // Unframed lines pass through for content-level parsing.
        assert_eq!(parse_framed(payload), Framed::Legacy(payload));
    }

    #[test]
    fn fsync_policy_tokens_round_trip() {
        for (token, policy) in [
            ("always", FsyncPolicy::Always),
            ("never", FsyncPolicy::Never),
            ("every:8", FsyncPolicy::EveryN(8)),
        ] {
            assert_eq!(FsyncPolicy::from_token(token).unwrap(), policy);
            assert_eq!(policy.token(), token);
        }
        assert!(FsyncPolicy::from_token("every:0").is_err());
        assert!(FsyncPolicy::from_token("sometimes").is_err());
    }

    #[test]
    fn io_fault_tokens_round_trip() {
        for kind in [IoFaultKind::Eio, IoFaultKind::Enospc, IoFaultKind::Torn] {
            assert_eq!(IoFaultKind::from_token(kind.token()).unwrap(), kind);
        }
        assert!(IoFaultKind::from_token("torn").is_err());
        assert!(
            IoFaultKind::from_token("panic").is_err(),
            "compute faults are not io faults"
        );
    }

    #[test]
    fn fault_plan_is_sticky_only_for_enospc() {
        let plan = IoFaultPlan::none()
            .inject(1, IoFaultKind::Eio)
            .inject(3, IoFaultKind::Enospc);
        assert_eq!(plan.fault_for(0), None);
        assert_eq!(plan.fault_for(1), Some(IoFaultKind::Eio));
        assert_eq!(plan.fault_for(2), None);
        assert_eq!(plan.fault_for(3), Some(IoFaultKind::Enospc));
        assert_eq!(
            plan.fault_for(999),
            Some(IoFaultKind::Enospc),
            "disk stays full"
        );
    }

    #[test]
    fn torn_prefixes_are_seeded_and_in_range() {
        let a = IoFaultPlan::none().seeded(7);
        let b = IoFaultPlan::none().seeded(7);
        for index in 0..16 {
            let k = a.torn_prefix(index, 100);
            assert_eq!(k, b.torn_prefix(index, 100), "same seed, same tear");
            assert!((1..100).contains(&k));
        }
        assert_ne!(
            (0..16).map(|i| a.torn_prefix(i, 100)).collect::<Vec<_>>(),
            vec![a.torn_prefix(0, 100); 16],
            "tears vary by index"
        );
    }

    #[test]
    fn appender_writes_framed_lines_and_counts_fsyncs() {
        let path = std::env::temp_dir().join(format!(
            "graphmem_durable_appender_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut app = DurableAppender::open(&path, FsyncPolicy::EveryN(2)).unwrap();
        for i in 0..3 {
            app.append(&format!("{{\"i\":{i}}}"), None, 0).unwrap();
        }
        assert_eq!(app.stats(), (3, 1), "3 records, 1 every-2 fsync");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(
                parse_framed(line),
                Framed::Valid(format!("{{\"i\":{i}}}").as_str())
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_faults_fail_appends_as_specified() {
        let path = std::env::temp_dir().join(format!(
            "graphmem_durable_faults_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut app = DurableAppender::open(&path, FsyncPolicy::Always).unwrap();
        // EIO: nothing written.
        assert!(app.append("{\"a\":1}", Some(IoFaultKind::Eio), 0).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        // ENOSPC: errno 28, nothing written.
        let err = app
            .append("{\"a\":1}", Some(IoFaultKind::Enospc), 0)
            .unwrap_err();
        assert!(is_enospc(&err), "{err}");
        // Torn: a strict prefix of the framed line remains.
        let err = app
            .append("{\"a\":1}", Some(IoFaultKind::Torn), 5)
            .unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let left = std::fs::read_to_string(&path).unwrap();
        assert_eq!(left.len(), 5);
        assert!(matches!(
            parse_framed(left.trim_end()),
            Framed::Legacy(_) | Framed::Corrupt
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_are_truncated_back_to_the_last_full_record() {
        let path = std::env::temp_dir().join(format!(
            "graphmem_durable_tail_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            truncate_torn_tail(&path).unwrap(),
            0,
            "missing file is fine"
        );
        let full = frame_record("{\"a\":1}");
        std::fs::write(&path, format!("{full}\n{full}")).unwrap();
        assert_eq!(truncate_torn_tail(&path).unwrap(), full.len() as u64);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), format!("{full}\n"));
        assert_eq!(truncate_torn_tail(&path).unwrap(), 0, "idempotent");
        // A file that is nothing but a torn record empties out.
        std::fs::write(&path, "torn").unwrap();
        assert_eq!(truncate_torn_tail(&path).unwrap(), 4);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn atomic_writes_replace_whole_files() {
        let path = std::env::temp_dir().join(format!(
            "graphmem_durable_atomic_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        write_atomic(&path, b"first\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
        write_atomic(&path, b"second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file is consumed by the rename"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_deterministic_jitter() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut last_floor = Duration::ZERO;
        for attempt in 1..=6 {
            let d = backoff_delay(base, cap, attempt, 42);
            let floor = (base * 2u32.pow(attempt - 1)).min(cap);
            assert!(d >= floor, "attempt {attempt}: {d:?} < floor {floor:?}");
            assert!(
                d <= floor + floor / 4,
                "attempt {attempt}: jitter exceeds floor/4"
            );
            assert_eq!(d, backoff_delay(base, cap, attempt, 42), "deterministic");
            assert!(floor >= last_floor, "floor is monotonic until the cap");
            last_floor = floor;
        }
        assert_eq!(
            (backoff_delay(base, cap, 6, 42) - backoff_delay(base, cap, 6, 42)).as_nanos(),
            0
        );
        // Different seeds give different jitter (spread, not lockstep).
        assert_ne!(
            backoff_delay(base, cap, 3, 1),
            backoff_delay(base, cap, 3, 2)
        );
    }
}
