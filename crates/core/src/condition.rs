//! Reproducible memory conditions: pressure, fragmentation, noise.

use graphmem_os::System;
use graphmem_physmem::{Fragmenter, Memhog, Noise};

use crate::error::GraphmemError;

/// How much free memory the application gets relative to its working-set
/// size (the paper's `memhog` methodology, §4.3.1: "available = WSS + X").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Surplus {
    /// No constraint at all: the fresh-boot / unbounded configuration.
    Unbounded,
    /// Free memory = WSS + this many bytes (negative ⇒ oversubscribed,
    /// the paper's −0.5 GB swap-thrashing point).
    Bytes(i64),
    /// Free memory = WSS × (1 + fraction). The paper's absolute 0–3 GB
    /// steps on 8.5–25 GB working sets correspond to roughly 0–35 % of
    /// WSS, which is how the scaled harness expresses them.
    FractionOfWss(f64),
}

impl Surplus {
    fn bytes(&self, wss: u64) -> Option<i64> {
        match self {
            Surplus::Unbounded => None,
            Surplus::Bytes(b) => Some(*b),
            Surplus::FractionOfWss(f) => Some((wss as f64 * f) as i64),
        }
    }
}

/// The memory condition an experiment runs under.
///
/// Setup order mirrors the paper's scripts: `memhog` first constrains free
/// memory, the `frag` utility then pins one non-movable page per huge
/// region for `fragmentation` of what remains, and finally movable
/// background *noise* occupies part of every non-surplus free huge region
/// (the "naturally fragmented" state of a long-running system, §4.4) —
/// leaving the surplus itself pristine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryCondition {
    /// Free-memory budget relative to the working set.
    pub surplus: Surplus,
    /// Fraction (`0.0..=1.0`) of available memory fragmented by
    /// non-movable pages (Fig. 8/9's 0–75 %).
    pub fragmentation: f64,
    /// Occupancy of background noise within non-surplus free huge regions
    /// (`0.0` disables noise; `0.5` is the harness default under
    /// pressure — half of every non-surplus free region is interleaved
    /// with other residents' movable pages, the long-running-system state
    /// of paper §4.4).
    pub noise_occupancy: f64,
}

impl MemoryCondition {
    /// Fresh boot: all memory free, nothing fragmented.
    pub fn unbounded() -> Self {
        MemoryCondition {
            surplus: Surplus::Unbounded,
            fragmentation: 0.0,
            noise_occupancy: 0.0,
        }
    }

    /// Memory pressure with the harness-default natural noise.
    pub fn pressured(surplus: Surplus) -> Self {
        MemoryCondition {
            surplus,
            fragmentation: 0.0,
            noise_occupancy: 0.5,
        }
    }

    /// Low pressure plus explicit non-movable fragmentation (the Fig. 8/9
    /// setup: WSS + 3 GB-equivalent, `frag` at the given level).
    pub fn fragmented(level: f64) -> Self {
        MemoryCondition {
            surplus: Surplus::FractionOfWss(0.35),
            fragmentation: level,
            noise_occupancy: 0.0,
        }
    }

    /// Compose a condition from the two user-facing knobs (an optional
    /// surplus and a fragmentation level) the way the harness frontends
    /// expose them: no knobs is a fresh boot, fragmentation alone is the
    /// Fig. 8/9 low-pressure setup, a surplus alone is the §4.3.1
    /// `memhog` methodology (with the default background noise), and both
    /// together keep the noise while honoring the explicit values. This
    /// is the single flag→condition assembly site for the CLI and the
    /// experiment service.
    pub fn from_knobs(surplus: Option<Surplus>, frag: f64) -> Self {
        match surplus {
            None | Some(Surplus::Unbounded) if frag == 0.0 => MemoryCondition::unbounded(),
            None | Some(Surplus::Unbounded) => MemoryCondition::fragmented(frag),
            Some(s) if frag == 0.0 => MemoryCondition::pressured(s),
            Some(s) => MemoryCondition {
                surplus: s,
                fragmentation: frag,
                noise_occupancy: 0.5,
            },
        }
    }

    /// Apply the condition to `sys` for a workload of `wss` bytes.
    /// Returns the artifacts (kept alive for the run) — dropping them
    /// early would release the pressure.
    ///
    /// # Panics
    ///
    /// Panics if the node is too small for the requested occupation
    /// (the experiment sizes nodes accordingly). [`Self::try_apply`] is
    /// the non-panicking form.
    pub fn apply(&self, sys: &mut System, wss: u64) -> ConditionArtifacts {
        match self.try_apply(sys, wss) {
            Ok(art) => art,
            Err(e) => panic!("{e}"),
        }
    }

    /// Apply the condition to `sys` for a workload of `wss` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphmemError::Resource`] if the node is too small for
    /// the requested occupation.
    pub fn try_apply(
        &self,
        sys: &mut System,
        wss: u64,
    ) -> Result<ConditionArtifacts, GraphmemError> {
        let node = sys.local_node();
        let Some(surplus) = self.surplus.bytes(wss) else {
            return Ok(ConditionArtifacts::default());
        };
        // Free memory = WSS + surplus, exactly the paper's methodology.
        // Kernel metadata (page tables, THP pgtable deposits) must fit in
        // the surplus too — which is precisely why the paper observes
        // swapping already at surplus 0 (§4.3.1).
        let geom = sys.geometry();
        let huge = geom.bytes(graphmem_vm::PageSize::Huge);
        // Solve for the pre-noise free target so that after noise holds
        // its share, the application still sees WSS + surplus free
        // (see DESIGN.md §4): F = WSS/(1-o) + S, with o applied only to
        // the non-surplus, non-fragmented portion.
        let o = self.noise_occupancy;
        let app_budget = wss as f64 / (1.0 - o).max(0.01);
        let free_target = (app_budget + surplus as f64).max(huge as f64) as u64;

        let hog = Memhog::occupy_all_but(sys.zone_mut(node), free_target).map_err(|e| {
            GraphmemError::Resource(format!(
                "node {node} cannot leave {free_target} bytes free under '{}': {e:?}",
                self.label()
            ))
        })?;

        let frag = if self.fragmentation > 0.0 {
            Some(Fragmenter::apply(sys.zone_mut(node), self.fragmentation))
        } else {
            None
        };

        let noise = if o > 0.0 {
            let zone = sys.zone_mut(node);
            let free_blocks = zone.free_huge_blocks();
            let pristine_target = surplus.max(0) as u64 / huge;
            let to_noise = free_blocks.saturating_sub(pristine_target);
            // Noise the *low* blocks, keeping the pristine surplus at high
            // addresses? The buddy allocates low-first, so noising the
            // blocks it would hand out first models a long-running system;
            // Noise::sprinkle allocates low-first which does exactly that.
            Some(Noise::sprinkle(zone, to_noise, o))
        } else {
            None
        };

        Ok(ConditionArtifacts {
            hog: Some(hog),
            frag,
            noise,
        })
    }

    /// Label used in harness output (the [`Display`](std::fmt::Display)
    /// rendering, as an owned string).
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for MemoryCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.surplus {
            Surplus::Unbounded => f.write_str("free")?,
            Surplus::Bytes(b) => write!(f, "wss{:+}MB", b / (1 << 20))?,
            Surplus::FractionOfWss(frac) => write!(f, "wss{:+.0}%", frac * 100.0)?,
        }
        if self.fragmentation > 0.0 {
            write!(f, ",frag{:.0}%", self.fragmentation * 100.0)?;
        }
        Ok(())
    }
}

/// Live pressure artifacts; keep until the experiment finishes.
#[derive(Debug, Default)]
pub struct ConditionArtifacts {
    hog: Option<Memhog>,
    frag: Option<Fragmenter>,
    noise: Option<Noise>,
}

impl ConditionArtifacts {
    /// Whether any constraint is active.
    pub fn is_active(&self) -> bool {
        self.hog.is_some() || self.frag.is_some() || self.noise.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmem_os::SystemSpec;

    #[test]
    fn unbounded_is_noop() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let free0 = sys.zone(1).free_frames();
        let art = MemoryCondition::unbounded().apply(&mut sys, 8 << 20);
        assert!(!art.is_active());
        assert_eq!(sys.zone(1).free_frames(), free0);
    }

    #[test]
    fn pressure_without_noise_leaves_wss_plus_surplus() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let wss = 8 << 20;
        let cond = MemoryCondition {
            surplus: Surplus::Bytes(2 << 20),
            fragmentation: 0.0,
            noise_occupancy: 0.0,
        };
        let _art = cond.apply(&mut sys, wss);
        let free = sys.zone(1).free_bytes();
        let expected = wss + (2 << 20);
        assert!(
            free.abs_diff(expected) < 1 << 20,
            "free {free} vs {expected}"
        );
    }

    #[test]
    fn noise_preserves_app_usable_budget() {
        let mut sys = System::new(SystemSpec::scaled(128));
        let wss = 16 << 20;
        let cond = MemoryCondition::pressured(Surplus::Bytes(4 << 20));
        let _art = cond.apply(&mut sys, wss);
        let free = sys.zone(1).free_bytes();
        // App-usable free should be ≈ WSS + surplus.
        let expected = wss + (4 << 20);
        assert!(
            free.abs_diff(expected) < 2 << 20,
            "free {free} vs expected {expected}"
        );
        // And the pristine huge blocks should be roughly the surplus.
        let pristine =
            sys.zone(1).free_huge_blocks() * sys.geometry().bytes(graphmem_vm::PageSize::Huge);
        assert!(pristine < (8 << 20), "pristine {pristine} too large");
        assert!(pristine > (2 << 20), "pristine {pristine} too small");
    }

    #[test]
    fn fragmentation_level_is_respected() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let cond = MemoryCondition::fragmented(0.5);
        let _art = cond.apply(&mut sys, 8 << 20);
        let lvl = sys.zone(1).fragmentation_level();
        assert!((lvl - 0.5).abs() < 0.1, "fragmentation {lvl}");
    }

    #[test]
    fn knob_composition() {
        assert_eq!(
            MemoryCondition::from_knobs(None, 0.0),
            MemoryCondition::unbounded()
        );
        assert_eq!(
            MemoryCondition::from_knobs(Some(Surplus::Unbounded), 0.25),
            MemoryCondition::fragmented(0.25)
        );
        assert_eq!(
            MemoryCondition::from_knobs(Some(Surplus::FractionOfWss(0.06)), 0.0),
            MemoryCondition::pressured(Surplus::FractionOfWss(0.06))
        );
        assert_eq!(
            MemoryCondition::from_knobs(Some(Surplus::FractionOfWss(0.12)), 0.5),
            MemoryCondition {
                surplus: Surplus::FractionOfWss(0.12),
                fragmentation: 0.5,
                noise_occupancy: 0.5,
            }
        );
    }

    #[test]
    fn labels() {
        assert_eq!(MemoryCondition::unbounded().to_string(), "free");
        assert_eq!(MemoryCondition::unbounded().label(), "free");
        assert_eq!(MemoryCondition::fragmented(0.25).label(), "wss+35%,frag25%");
        assert_eq!(
            MemoryCondition::pressured(Surplus::Bytes(-(1 << 20))).label(),
            "wss-1MB"
        );
    }
}
