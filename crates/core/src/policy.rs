//! Page-size policies and preprocessing options.

/// The page-size management strategies of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PagePolicy {
    /// 4 KiB base pages only — the paper's baseline (THP `never`).
    BaseOnly,
    /// Linux's system-wide greedy policy (THP `always`).
    ThpSystemWide,
    /// Programmer-directed THP (`madvise` mode): huge pages only for the
    /// chosen data structures (the Fig. 5 per-array study).
    PerArray {
        /// Advise the vertex (offset) array.
        vertex: bool,
        /// Advise the edge array.
        edge: bool,
        /// Advise the values (weight) array, if the kernel has one.
        values: bool,
        /// Advise the property array(s).
        property: bool,
    },
    /// The paper's contribution (§5.2): `madvise(MADV_HUGEPAGE)` on only
    /// the first `fraction` of the property array — which, after
    /// degree-based preprocessing, is exactly where the hot vertices live.
    SelectiveProperty {
        /// Fraction of the property array to advise, `0.0..=1.0`.
        fraction: f64,
    },
    /// Explicit huge pages via a boot-time hugetlbfs reservation for the
    /// property array(s) (paper §2.3's alternative mechanism: guaranteed
    /// even under fragmentation, but requires planning the reservation
    /// before memory degrades and pins it permanently).
    HugetlbProperty,
    /// Automatic selective THP (the paper's future-work §5.2, implemented
    /// in [`autotune`](crate::autotune)): derive the property-array prefix
    /// from the graph's in-degree distribution so that the advised pages
    /// receive at least `coverage` of the expected accesses.
    AutoSelective {
        /// Target fraction of property accesses to cover, `0.0..=1.0`.
        coverage: f64,
    },
}

impl PagePolicy {
    /// Shorthand for [`PagePolicy::PerArray`] on the property array only.
    pub fn property_only() -> Self {
        PagePolicy::PerArray {
            vertex: false,
            edge: false,
            values: false,
            property: true,
        }
    }

    /// Label used in harness output (the [`Display`](std::fmt::Display)
    /// rendering, as an owned string).
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for PagePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagePolicy::BaseOnly => f.write_str("4KB"),
            PagePolicy::ThpSystemWide => f.write_str("THP"),
            PagePolicy::PerArray {
                vertex,
                edge,
                values,
                property,
            } => {
                let mut parts = Vec::new();
                if *vertex {
                    parts.push("vertex");
                }
                if *edge {
                    parts.push("edge");
                }
                if *values {
                    parts.push("values");
                }
                if *property {
                    parts.push("property");
                }
                write!(f, "THP[{}]", parts.join("+"))
            }
            PagePolicy::SelectiveProperty { fraction } => {
                write!(f, "THP[prop {:.0}%]", fraction * 100.0)
            }
            PagePolicy::AutoSelective { coverage } => {
                write!(f, "THP[auto cov{:.0}%]", coverage * 100.0)
            }
            PagePolicy::HugetlbProperty => f.write_str("hugetlbfs[property]"),
        }
    }
}

/// Vertex-reordering preprocessing coupled with the page policy (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preprocessing {
    /// Use the input's original vertex order.
    #[default]
    None,
    /// Degree-Based Grouping — the paper's choice: coalesces hot vertices
    /// into the property array prefix at low preprocessing cost.
    Dbg,
    /// Full descending degree sort (ablation).
    DegreeSort,
    /// Random permutation (ablation: destroys locality).
    Random,
}

impl Preprocessing {
    /// Label used in harness output (also the
    /// [`Display`](std::fmt::Display) rendering).
    pub fn label(&self) -> &'static str {
        match self {
            Preprocessing::None => "orig",
            Preprocessing::Dbg => "dbg",
            Preprocessing::DegreeSort => "sort",
            Preprocessing::Random => "rand",
        }
    }
}

impl std::fmt::Display for Preprocessing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_label() {
        assert_eq!(PagePolicy::ThpSystemWide.to_string(), "THP");
        assert_eq!(
            PagePolicy::property_only().to_string(),
            PagePolicy::property_only().label()
        );
        assert_eq!(Preprocessing::Dbg.to_string(), "dbg");
        assert_eq!(
            Preprocessing::Random.to_string(),
            Preprocessing::Random.label()
        );
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(PagePolicy::BaseOnly.label(), "4KB");
        assert_eq!(PagePolicy::ThpSystemWide.label(), "THP");
        assert_eq!(PagePolicy::property_only().label(), "THP[property]");
        assert_eq!(
            PagePolicy::SelectiveProperty { fraction: 0.5 }.label(),
            "THP[prop 50%]"
        );
        assert_eq!(
            PagePolicy::AutoSelective { coverage: 0.8 }.label(),
            "THP[auto cov80%]"
        );
        assert_eq!(Preprocessing::Dbg.label(), "dbg");
    }
}
