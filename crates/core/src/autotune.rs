//! Automatic hot-data identification and selectivity tuning.
//!
//! The paper closes §5.2 noting that its manual tuning "is just the first
//! step towards automatically identifying and exploiting the asymmetric
//! value of huge page allocations". This module implements that step for
//! graph analytics: since property-array access frequency is proportional
//! to vertex in-degree (each incoming edge is one pointer-indirect access,
//! §3.2), the access histogram over property pages can be computed *from
//! the graph structure alone* — no profiling run needed. From it we derive
//! the smallest property-array prefix whose huge-page backing covers a
//! target share of accesses.

use graphmem_graph::Csr;

/// Expected access mass per huge-page-sized chunk of the property array,
/// derived from vertex in-degrees.
#[derive(Debug, Clone)]
pub struct HotnessProfile {
    /// Access mass (in-degree sum) per huge-page chunk, in layout order.
    chunk_mass: Vec<u64>,
    /// Bytes of property array covered by each chunk.
    chunk_bytes: u64,
    /// Total property-array bytes.
    property_bytes: u64,
}

impl HotnessProfile {
    /// Build the profile for a property array of `elem_bytes`-sized
    /// entries per vertex of `csr`, chunked at `huge_bytes` granularity.
    ///
    /// # Panics
    ///
    /// Panics if `elem_bytes` or `huge_bytes` is zero.
    pub fn from_graph(csr: &Csr, elem_bytes: u64, huge_bytes: u64) -> Self {
        assert!(elem_bytes > 0 && huge_bytes > 0);
        let n = csr.num_vertices() as u64;
        let mut in_degree = vec![0u64; n as usize];
        for v in 0..csr.num_vertices() {
            for &u in csr.neighbors(v) {
                in_degree[u as usize] += 1;
            }
        }
        let property_bytes = n * elem_bytes;
        let nchunks = property_bytes.div_ceil(huge_bytes).max(1);
        let per_chunk = huge_bytes / elem_bytes;
        let mut chunk_mass = vec![0u64; nchunks as usize];
        for (v, &d) in in_degree.iter().enumerate() {
            chunk_mass[(v as u64 / per_chunk.max(1)) as usize] += d;
        }
        HotnessProfile {
            chunk_mass,
            chunk_bytes: huge_bytes,
            property_bytes,
        }
    }

    /// Access mass per chunk, in property-array layout order.
    pub fn chunk_mass(&self) -> &[u64] {
        &self.chunk_mass
    }

    /// Fraction of total access mass landing in the first `k` chunks.
    pub fn prefix_coverage(&self, k: usize) -> f64 {
        let total: u64 = self.chunk_mass.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let covered: u64 = self.chunk_mass.iter().take(k).sum();
        covered as f64 / total as f64
    }

    /// The smallest property-array prefix fraction whose chunks receive at
    /// least `coverage` (`0.0..=1.0`) of the expected accesses.
    ///
    /// Because only the *prefix* can be advised (that is what
    /// `madvise(addr, len)` expresses), inputs whose hot vertices are
    /// scattered — e.g. the ID-shuffled Kronecker graph before DBG — will
    /// legitimately need a large fraction; DBG preprocessing makes the
    /// prefix small.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `0.0..=1.0`.
    pub fn prefix_fraction_for_coverage(&self, coverage: f64) -> f64 {
        assert!((0.0..=1.0).contains(&coverage), "coverage out of range");
        let total: u64 = self.chunk_mass.iter().sum();
        if total == 0 || coverage == 0.0 {
            return 0.0;
        }
        let target = (total as f64 * coverage).ceil() as u64;
        let mut acc = 0u64;
        for (i, &m) in self.chunk_mass.iter().enumerate() {
            acc += m;
            if acc >= target {
                let bytes = (i as u64 + 1) * self.chunk_bytes;
                return (bytes as f64 / self.property_bytes as f64).min(1.0);
            }
        }
        1.0
    }

    /// Concentration diagnostic: fraction of access mass in the hottest
    /// 10% of chunks (position-independent — high even before reordering).
    pub fn concentration(&self) -> f64 {
        let total: u64 = self.chunk_mass.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut sorted = self.chunk_mass.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let k = (sorted.len().div_ceil(10)).max(1);
        sorted[..k].iter().sum::<u64>() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmem_graph::{reorder, Dataset};

    fn profile(csr: &Csr) -> HotnessProfile {
        HotnessProfile::from_graph(csr, 8, 64 * 1024)
    }

    #[test]
    fn mass_conserves_edges() {
        let csr = Dataset::Kron25.generate_with_scale(13);
        let p = profile(&csr);
        assert_eq!(p.chunk_mass().iter().sum::<u64>(), csr.num_edges());
        assert_eq!(p.prefix_coverage(p.chunk_mass().len()), 1.0);
    }

    #[test]
    fn dbg_shrinks_the_recommended_prefix() {
        let csr = Dataset::Kron25.generate_with_scale(14); // shuffled IDs
        let before = profile(&csr).prefix_fraction_for_coverage(0.6);
        let perm = reorder::degree_based_grouping(&csr);
        let after = profile(&csr.permuted(&perm)).prefix_fraction_for_coverage(0.6);
        assert!(
            after < before * 0.7,
            "DBG should shrink the prefix: {after:.3} vs {before:.3}"
        );
        assert!(after > 0.0);
    }

    #[test]
    fn coverage_is_monotone_in_fraction() {
        let csr = Dataset::Twitter.generate_with_scale(13);
        let p = profile(&csr);
        let f50 = p.prefix_fraction_for_coverage(0.5);
        let f80 = p.prefix_fraction_for_coverage(0.8);
        let f100 = p.prefix_fraction_for_coverage(1.0);
        assert!(f50 <= f80 && f80 <= f100);
        assert_eq!(p.prefix_fraction_for_coverage(0.0), 0.0);
        assert!((0.0..=1.0).contains(&f100));
    }

    #[test]
    fn concentration_reflects_power_law() {
        let csr = Dataset::Twitter.generate_with_scale(13);
        let c = profile(&csr).concentration();
        assert!(c > 0.3, "power-law concentration {c}");
    }

    #[test]
    fn handles_degenerate_inputs() {
        // A graph with zero edges.
        let csr = graphmem_graph::CsrBuilder::from_edge_list(100, &[], None);
        let p = HotnessProfile::from_graph(&csr, 8, 4096);
        assert_eq!(p.prefix_fraction_for_coverage(0.9), 0.0);
        assert_eq!(p.concentration(), 0.0);
    }
}
