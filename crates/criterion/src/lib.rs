//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors a minimal wall-clock benchmarking harness with the API
//! surface graphmem's `micro` bench uses: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Reporting is intentionally simple: per benchmark it prints the median,
//! minimum, and maximum time per iteration over `sample_size` samples. There
//! is no statistical regression analysis, HTML report, or warm-up tuning —
//! the paper-figure benches in this workspace use their own `harness = false`
//! mains and only `micro.rs` goes through this harness.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// this harness always runs one routine call per setup call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: many batches would fit in memory.
    SmallInput,
    /// Large input: batch memory footprint dominates.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Measure `f` repeatedly; iteration counts are auto-calibrated so each
    /// sample spans at least ~1 ms of wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fill ~1ms?
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Benchmark registry/runner, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark and print its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let mut s = b.samples_ns;
        if s.is_empty() {
            println!("{id:<40} (no samples recorded)");
            return self;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(s[0]),
            fmt_ns(median),
            fmt_ns(s[s.len() - 1]),
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Group benchmark target functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion__ = $cfg;
            $($target(&mut criterion__);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit a `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(7);
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 7);
        assert_eq!(runs, 7);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
