//! Epoch-sampled time-series metrics.
//!
//! A [`MetricsSample`] is a snapshot of *cumulative* simulator counters plus
//! a few *instantaneous* memory-state gauges, stamped with the simulated
//! cycle clock. The [`EpochSampler`] collects one every N cycles into a
//! [`MetricsSeries`]; per-epoch rates fall out of adjacent-sample deltas, so
//! the series always reconciles with end-of-run aggregate counters.

use std::io::{self, Write};
use std::path::Path;

use crate::json::JsonObject;

macro_rules! metrics_sample {
    (
        cumulative { $($(#[$cmeta:meta])* $cum:ident),+ $(,)? }
        gauges_u64 { $($(#[$gmeta:meta])* $gauge:ident),+ $(,)? }
        gauges_f64 { $($(#[$fmeta:meta])* $fgauge:ident),+ $(,)? }
    ) => {
        /// One epoch snapshot: cumulative counters plus instantaneous gauges.
        #[derive(Debug, Clone, Copy, Default, PartialEq)]
        pub struct MetricsSample {
            /// Simulated cycle at which the snapshot was taken.
            pub cycle: u64,
            $($(#[$cmeta])* pub $cum: u64,)+
            $($(#[$gmeta])* pub $gauge: u64,)+
            $($(#[$fmeta])* pub $fgauge: f64,)+
        }

        impl MetricsSample {
            /// Column names, in CSV column order.
            pub const FIELDS: &'static [&'static str] = &[
                "cycle",
                $(stringify!($cum),)+
                $(stringify!($gauge),)+
                $(stringify!($fgauge),)+
            ];

            /// Values in [`Self::FIELDS`] order, rendered for CSV.
            pub fn csv_row(&self) -> String {
                let mut cols: Vec<String> = vec![self.cycle.to_string()];
                $(cols.push(self.$cum.to_string());)+
                $(cols.push(self.$gauge.to_string());)+
                $(cols.push(format!("{:.6}", self.$fgauge));)+
                cols.join(",")
            }

            /// The change since `earlier`: cumulative counters are
            /// subtracted, gauges keep this sample's (later) value, and
            /// `cycle` is the epoch length.
            pub fn delta(&self, earlier: &MetricsSample) -> MetricsSample {
                MetricsSample {
                    cycle: self.cycle - earlier.cycle,
                    $($cum: self.$cum - earlier.$cum,)+
                    $($gauge: self.$gauge,)+
                    $($fgauge: self.$fgauge,)+
                }
            }

            /// Render as one JSON object.
            pub fn to_json(&self) -> String {
                let mut o = JsonObject::new();
                o.field_u64("cycle", self.cycle);
                $(o.field_u64(stringify!($cum), self.$cum);)+
                $(o.field_u64(stringify!($gauge), self.$gauge);)+
                $(o.field_f64(stringify!($fgauge), self.$fgauge);)+
                o.finish()
            }

            /// Rebuild a sample from a parsed JSON object — the exact
            /// inverse of [`Self::to_json`] (floats were written with
            /// shortest-round-trip formatting, so the result is
            /// bit-identical).
            ///
            /// # Errors
            ///
            /// Returns a message naming the first missing or mistyped field.
            pub fn from_json_value(v: &crate::json::JsonValue) -> Result<MetricsSample, String> {
                let u = |k: &str| {
                    v.get(k)
                        .and_then(crate::json::JsonValue::as_u64)
                        .ok_or_else(|| format!("sample field '{k}' missing or not an integer"))
                };
                let f = |k: &str| {
                    v.get(k)
                        .and_then(crate::json::JsonValue::as_f64)
                        .ok_or_else(|| format!("sample field '{k}' missing or not a number"))
                };
                Ok(MetricsSample {
                    cycle: u("cycle")?,
                    $($cum: u(stringify!($cum))?,)+
                    $($gauge: u(stringify!($gauge))?,)+
                    $($fgauge: f(stringify!($fgauge))?,)+
                })
            }
        }
    };
}

metrics_sample! {
    cumulative {
        /// Simulated memory accesses issued by the workload.
        accesses,
        /// First-level DTLB misses.
        dtlb_misses,
        /// Unified second-level TLB misses (page walks).
        stlb_misses,
        /// PTE reads performed by page walks.
        walk_pte_reads,
        /// Cycles spent in address translation.
        translation_cycles,
        /// Page faults taken.
        faults,
        /// Faults resolved with a huge page.
        huge_faults,
        /// Huge-page faults that fell back to base pages.
        huge_fallbacks,
        /// khugepaged promotions performed.
        promotions,
        /// Huge mappings demoted (for swap or by the utilization daemon).
        demotions,
        /// khugepaged scan passes.
        khugepaged_scans,
        /// Direct-compaction attempts.
        direct_compactions,
        /// Frames migrated by compaction.
        frames_migrated,
        /// Pages written to swap.
        swap_outs,
        /// Pages read back from swap.
        swap_ins,
        /// Cycles charged to kernel work.
        kernel_cycles,
    }
    gauges_u64 {
        /// Free frames in the workload's zone right now.
        free_frames,
        /// Fully-free huge-page-sized blocks right now.
        free_huge_blocks,
        /// Base-page mappings currently live.
        base_pages_mapped,
        /// Huge-page mappings currently live.
        huge_pages_mapped,
    }
    gauges_f64 {
        /// Free-memory fragmentation index: 1 − (frames in fully-free huge
        /// blocks / free frames). 0 = perfectly defragmented free memory.
        fragmentation_index,
        /// Fraction of mapped bytes currently backed by huge pages.
        huge_coverage,
    }
}

impl MetricsSample {
    /// DTLB misses per access over this (delta) sample; 0 when idle.
    pub fn dtlb_miss_rate(&self) -> f64 {
        ratio(self.dtlb_misses, self.accesses)
    }

    /// STLB misses per access over this (delta) sample; 0 when idle.
    pub fn stlb_miss_rate(&self) -> f64 {
        ratio(self.stlb_misses, self.accesses)
    }

    /// Faults per million simulated cycles over this (delta) sample.
    pub fn faults_per_mcycle(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.faults as f64 * 1e6 / self.cycle as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A time series of epoch snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSeries {
    /// Nominal sampling interval in simulated cycles.
    pub interval: u64,
    samples: Vec<MetricsSample>,
}

impl MetricsSeries {
    /// An empty series with the given nominal interval.
    pub fn new(interval: u64) -> Self {
        MetricsSeries {
            interval,
            samples: Vec::new(),
        }
    }

    /// Append a snapshot (cycles must be non-decreasing).
    pub fn push(&mut self, sample: MetricsSample) {
        if let Some(last) = self.samples.last() {
            debug_assert!(sample.cycle >= last.cycle, "samples must be in time order");
        }
        self.samples.push(sample);
    }

    /// All snapshots, oldest first.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// The most recent snapshot.
    pub fn last(&self) -> Option<&MetricsSample> {
        self.samples.last()
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no snapshot has been taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-epoch deltas between adjacent samples (the first epoch is
    /// measured from the zero sample). Summing the cumulative fields of the
    /// result reproduces the final sample exactly.
    pub fn deltas(&self) -> Vec<MetricsSample> {
        let zero = MetricsSample::default();
        self.samples
            .iter()
            .scan(zero, |prev, s| {
                let d = s.delta(prev);
                *prev = *s;
                Some(d)
            })
            .collect()
    }

    /// Render as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = MetricsSample::FIELDS.join(",");
        out.push('\n');
        for s in &self.samples {
            out.push_str(&s.csv_row());
            out.push('\n');
        }
        out
    }

    /// Write [`Self::to_csv`] to a file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Render as a JSON object (interval + array of samples).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("interval", self.interval);
        o.field_raw(
            "samples",
            &crate::json::array(self.samples.iter().map(|s| s.to_json())),
        );
        o.finish()
    }

    /// Rebuild a series from a parsed JSON object — the inverse of
    /// [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json_value(v: &crate::json::JsonValue) -> Result<MetricsSeries, String> {
        let interval = v
            .get("interval")
            .and_then(crate::json::JsonValue::as_u64)
            .ok_or("series field 'interval' missing or not an integer")?;
        let raw = v
            .get("samples")
            .and_then(crate::json::JsonValue::as_array)
            .ok_or("series field 'samples' missing or not an array")?;
        let mut series = MetricsSeries::new(interval);
        for s in raw {
            series.push(MetricsSample::from_json_value(s)?);
        }
        Ok(series)
    }
}

/// Drives epoch sampling: tells the simulation driver when a snapshot is due
/// and accumulates the resulting series.
#[derive(Debug, Clone)]
pub struct EpochSampler {
    interval: u64,
    next: u64,
    series: MetricsSeries,
}

impl EpochSampler {
    /// Sample every `interval` simulated cycles (`interval > 0`).
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        EpochSampler {
            interval,
            next: interval,
            series: MetricsSeries::new(interval),
        }
    }

    /// Sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Whether the clock has crossed the next sampling point.
    #[inline]
    pub fn due(&self, clock: u64) -> bool {
        clock >= self.next
    }

    /// The cycle at which the next sample becomes due. Drivers that batch
    /// event checks behind a watermark use this to schedule the next stop.
    #[inline]
    pub fn next_due(&self) -> u64 {
        self.next
    }

    /// Record a due snapshot and schedule the next epoch after it.
    pub fn record(&mut self, sample: MetricsSample) {
        while self.next <= sample.cycle {
            self.next += self.interval;
        }
        self.series.push(sample);
    }

    /// Record the final snapshot unconditionally (end of run). If the clock
    /// has not advanced since the last snapshot, the last one is replaced so
    /// the series never ends with a duplicate cycle.
    pub fn record_final(&mut self, sample: MetricsSample) {
        if self.series.last().is_some_and(|l| l.cycle == sample.cycle) {
            let n = self.series.samples.len();
            self.series.samples[n - 1] = sample;
        } else {
            self.series.push(sample);
        }
    }

    /// The accumulated series.
    pub fn series(&self) -> &MetricsSeries {
        &self.series
    }

    /// Consume the sampler, yielding its series.
    pub fn into_series(self) -> MetricsSeries {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64, accesses: u64, faults: u64) -> MetricsSample {
        MetricsSample {
            cycle,
            accesses,
            dtlb_misses: accesses / 10,
            faults,
            free_frames: 100,
            fragmentation_index: 0.25,
            ..MetricsSample::default()
        }
    }

    #[test]
    fn series_round_trips_through_json() {
        let mut series = MetricsSeries::new(100);
        series.push(sample(100, 10, 1));
        series.push(sample(250, 37, 2));
        let text = series.to_json();
        let v = crate::json::JsonValue::parse(&text).unwrap();
        let back = MetricsSeries::from_json_value(&v).unwrap();
        assert_eq!(back.interval, series.interval);
        assert_eq!(back.samples(), series.samples());
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn sample_from_json_names_missing_field() {
        let v = crate::json::JsonValue::parse(r#"{"cycle":5}"#).unwrap();
        let err = MetricsSample::from_json_value(&v).unwrap_err();
        assert!(err.contains("accesses"), "unexpected message: {err}");
    }

    #[test]
    fn sampler_fires_on_epoch_boundaries_only() {
        let mut s = EpochSampler::new(100);
        assert!(!s.due(0));
        assert!(!s.due(99));
        assert!(s.due(100));
        s.record(sample(105, 10, 1));
        assert!(!s.due(199)); // next epoch is at 200
        assert!(s.due(200));
        s.record(sample(450, 40, 2)); // skipped epochs collapse
        assert!(!s.due(499));
        assert!(s.due(500));
        assert_eq!(s.series().len(), 2);
    }

    #[test]
    fn record_final_replaces_duplicate_cycle() {
        let mut s = EpochSampler::new(100);
        s.record(sample(100, 10, 1));
        s.record_final(sample(100, 12, 1));
        assert_eq!(s.series().len(), 1);
        assert_eq!(s.series().last().unwrap().accesses, 12);
        s.record_final(sample(150, 20, 2));
        assert_eq!(s.series().len(), 2);
    }

    #[test]
    fn deltas_sum_back_to_final_cumulative_sample() {
        let mut series = MetricsSeries::new(100);
        series.push(sample(100, 17, 2));
        series.push(sample(200, 40, 3));
        series.push(sample(350, 95, 9));
        let deltas = series.deltas();
        assert_eq!(deltas.len(), 3);
        let total_accesses: u64 = deltas.iter().map(|d| d.accesses).sum();
        let total_faults: u64 = deltas.iter().map(|d| d.faults).sum();
        let total_cycles: u64 = deltas.iter().map(|d| d.cycle).sum();
        let last = series.last().unwrap();
        assert_eq!(total_accesses, last.accesses);
        assert_eq!(total_faults, last.faults);
        assert_eq!(total_cycles, last.cycle);
        // Gauges carry the instantaneous value, not a difference.
        assert_eq!(deltas[1].free_frames, 100);
    }

    #[test]
    fn csv_header_matches_row_arity() {
        let header_cols = MetricsSample::FIELDS.len();
        let row = sample(1, 2, 3).csv_row();
        assert_eq!(row.split(',').count(), header_cols);
        let csv = {
            let mut s = MetricsSeries::new(10);
            s.push(sample(10, 5, 1));
            s.to_csv()
        };
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap().split(',').count(),
            header_cols,
            "header arity"
        );
        assert_eq!(lines.next().unwrap().split(',').count(), header_cols);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let z = MetricsSample::default();
        assert_eq!(z.dtlb_miss_rate(), 0.0);
        assert_eq!(z.stlb_miss_rate(), 0.0);
        assert_eq!(z.faults_per_mcycle(), 0.0);
        let d = sample(200, 100, 4).delta(&sample(100, 50, 2));
        assert_eq!(d.accesses, 50);
        assert_eq!(d.faults_per_mcycle(), 2.0 * 1e6 / 100.0);
    }

    #[test]
    fn json_export_contains_samples() {
        let mut s = MetricsSeries::new(10);
        s.push(sample(10, 5, 1));
        let j = s.to_json();
        assert!(j.starts_with(r#"{"interval":10,"samples":[{"cycle":10,"#));
    }
}
