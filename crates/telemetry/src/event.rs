//! Typed, cycle-stamped simulator events.
//!
//! Payloads are plain integers/enums (no references into simulator state), so
//! this crate sits below `graphmem-physmem`/`-vm`/`-os` in the dependency
//! graph and every layer can emit without cycles.

use crate::json::JsonObject;

/// Which TLB array an entry moved in or out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// A first-level (per-page-size) DTLB.
    L1,
    /// The unified second-level TLB.
    Stlb,
}

impl TlbLevel {
    fn name(self) -> &'static str {
        match self {
            TlbLevel::L1 => "l1",
            TlbLevel::Stlb => "stlb",
        }
    }
}

/// How a page fault was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Mapped a base page.
    Base,
    /// Mapped a huge page.
    Huge,
    /// Wanted a huge page but fell back to a base page.
    HugeFallback,
    /// Brought a page back from swap.
    SwapIn,
    /// Mapped a pre-reserved hugetlbfs page.
    Hugetlb,
}

impl FaultOutcome {
    fn name(self) -> &'static str {
        match self {
            FaultOutcome::Base => "base",
            FaultOutcome::Huge => "huge",
            FaultOutcome::HugeFallback => "huge_fallback",
            FaultOutcome::SwapIn => "swap_in",
            FaultOutcome::Hugetlb => "hugetlb",
        }
    }
}

/// Why a huge mapping was demoted to base pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemotionReason {
    /// Demoted so individual base pages could be swapped out.
    Swap,
    /// Demoted by the utilization daemon (bloat recovery).
    Utilization,
    /// Demoted by the page-size governor to free contiguity for a
    /// hotter region.
    Governor,
}

impl DemotionReason {
    fn name(self) -> &'static str {
        match self {
            DemotionReason::Swap => "swap",
            DemotionReason::Utilization => "utilization",
            DemotionReason::Governor => "governor",
        }
    }
}

/// What a reclaim step recovered or moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimKind {
    /// Dropped a clean page-cache frame.
    CacheDrop,
    /// Wrote an anonymous page out to swap.
    SwapOut,
    /// Read a page back in from swap.
    SwapIn,
}

impl ReclaimKind {
    fn name(self) -> &'static str {
        match self {
            ReclaimKind::CacheDrop => "cache_drop",
            ReclaimKind::SwapOut => "swap_out",
            ReclaimKind::SwapIn => "swap_in",
        }
    }
}

/// The typed payload of one simulator event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A translation was inserted into a TLB array.
    TlbFill {
        /// Array filled.
        level: TlbLevel,
        /// Whether the entry maps a huge page.
        huge: bool,
        /// Virtual page number at the entry's page size.
        vpn: u64,
    },
    /// A valid entry was displaced from a TLB array by a fill.
    TlbEvict {
        /// Array evicted from.
        level: TlbLevel,
        /// Whether the victim mapped a huge page.
        huge: bool,
        /// Victim's virtual page number.
        vpn: u64,
    },
    /// The page-table walker resolved a translation.
    PageWalk {
        /// Faulting/translated virtual address.
        vaddr: u64,
        /// PTE reads charged to the walk.
        pte_reads: u32,
        /// Simulated cycles the walk cost.
        cycles: u32,
        /// Whether the walk ended at a huge leaf.
        huge_leaf: bool,
    },
    /// A page fault was taken and resolved.
    PageFault {
        /// Faulting virtual address.
        vaddr: u64,
        /// How it was resolved.
        outcome: FaultOutcome,
    },
    /// khugepaged woke up and scanned for promotion candidates.
    KhugepagedScan {
        /// Candidate regions examined this scan.
        regions_scanned: u32,
        /// Regions promoted this scan.
        promoted: u32,
    },
    /// A base-page region was promoted to a huge mapping.
    Promotion {
        /// Virtual address of the promoted region.
        vaddr: u64,
        /// Whether compaction ran to make the huge frame.
        compacted: bool,
    },
    /// A huge mapping was demoted to base pages.
    Demotion {
        /// Virtual address of the demoted region.
        vaddr: u64,
        /// Why it was demoted.
        reason: DemotionReason,
    },
    /// A compaction pass over one pageblock finished.
    CompactionPass {
        /// Frames migrated out of the block.
        frames_migrated: u32,
        /// Whether the block ended fully free.
        freed: bool,
    },
    /// A reclaim step ran (cache drop / swap traffic).
    Reclaim {
        /// What was reclaimed.
        kind: ReclaimKind,
        /// Frames affected.
        frames: u32,
    },
    /// The buddy allocator split a free block.
    BuddySplit {
        /// Order of the block that was split.
        order_from: u8,
        /// Order the allocation actually needed.
        order_to: u8,
        /// Base frame of the split block.
        base: u64,
    },
    /// The buddy allocator merged two free buddies.
    BuddyMerge {
        /// Order of each merged buddy.
        order_from: u8,
        /// Order of the resulting block.
        order_to: u8,
        /// Base frame of the resulting block.
        base: u64,
    },
    /// The sweep supervisor is retrying a failed experiment.
    ExperimentRetry {
        /// Index of the experiment within the sweep grid.
        index: u32,
        /// Attempt number about to run (1 = first retry).
        attempt: u32,
    },
    /// The sweep supervisor gave up on an experiment.
    ExperimentFailure {
        /// Index of the experiment within the sweep grid.
        index: u32,
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// The sweep supervisor finished an experiment successfully.
    ExperimentComplete {
        /// Index of the experiment within the sweep grid.
        index: u32,
        /// Total attempts made, including the successful one.
        attempts: u32,
    },
    /// A config's circuit breaker tripped open after consecutive
    /// panic/timeout outcomes.
    BreakerOpen {
        /// Index of the experiment within the sweep grid (or submission
        /// order, for the experiment service).
        index: u32,
        /// Consecutive counting failures that tripped the breaker.
        failures: u32,
    },
    /// A config's circuit breaker closed again (successful half-open
    /// probe).
    BreakerClose {
        /// Index of the experiment within the sweep grid (or submission
        /// order, for the experiment service).
        index: u32,
    },
    /// The page-size governor finished one control epoch.
    GovernorEpoch {
        /// Epoch number (1-based).
        epoch: u32,
        /// Regions promoted this epoch.
        promoted: u32,
        /// Huge mappings demoted this epoch.
        demoted: u32,
        /// Promotions denied for lack of contiguity this epoch.
        denied: u32,
    },
}

/// One traced occurrence: a payload stamped with the simulated cycle clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

impl EventKind {
    /// Stable snake_case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TlbFill { .. } => "tlb_fill",
            EventKind::TlbEvict { .. } => "tlb_evict",
            EventKind::PageWalk { .. } => "page_walk",
            EventKind::PageFault { .. } => "page_fault",
            EventKind::KhugepagedScan { .. } => "khugepaged_scan",
            EventKind::Promotion { .. } => "promotion",
            EventKind::Demotion { .. } => "demotion",
            EventKind::CompactionPass { .. } => "compaction_pass",
            EventKind::Reclaim { .. } => "reclaim",
            EventKind::BuddySplit { .. } => "buddy_split",
            EventKind::BuddyMerge { .. } => "buddy_merge",
            EventKind::ExperimentRetry { .. } => "experiment_retry",
            EventKind::ExperimentFailure { .. } => "experiment_failure",
            EventKind::ExperimentComplete { .. } => "experiment_complete",
            EventKind::BreakerOpen { .. } => "breaker_open",
            EventKind::BreakerClose { .. } => "breaker_close",
            EventKind::GovernorEpoch { .. } => "governor_epoch",
        }
    }

    /// The mask bit selecting this kind of event.
    pub fn mask_bit(&self) -> EventMask {
        match self {
            EventKind::TlbFill { .. } => EventMask::TLB_FILL,
            EventKind::TlbEvict { .. } => EventMask::TLB_EVICT,
            EventKind::PageWalk { .. } => EventMask::PAGE_WALK,
            EventKind::PageFault { .. } => EventMask::PAGE_FAULT,
            EventKind::KhugepagedScan { .. } => EventMask::KHUGEPAGED_SCAN,
            EventKind::Promotion { .. } => EventMask::PROMOTION,
            EventKind::Demotion { .. } => EventMask::DEMOTION,
            EventKind::CompactionPass { .. } => EventMask::COMPACTION,
            EventKind::Reclaim { .. } => EventMask::RECLAIM,
            EventKind::BuddySplit { .. } => EventMask::BUDDY_SPLIT,
            EventKind::BuddyMerge { .. } => EventMask::BUDDY_MERGE,
            EventKind::ExperimentRetry { .. } => EventMask::EXPERIMENT_RETRY,
            EventKind::ExperimentFailure { .. } => EventMask::EXPERIMENT_FAILURE,
            EventKind::ExperimentComplete { .. } => EventMask::EXPERIMENT_COMPLETE,
            EventKind::BreakerOpen { .. } => EventMask::BREAKER_OPEN,
            EventKind::BreakerClose { .. } => EventMask::BREAKER_CLOSE,
            EventKind::GovernorEpoch { .. } => EventMask::GOVERNOR,
        }
    }
}

impl Event {
    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("cycle", self.cycle);
        o.field_str("event", self.kind.name());
        match self.kind {
            EventKind::TlbFill { level, huge, vpn } | EventKind::TlbEvict { level, huge, vpn } => {
                o.field_str("level", level.name());
                o.field_bool("huge", huge);
                o.field_u64("vpn", vpn);
            }
            EventKind::PageWalk {
                vaddr,
                pte_reads,
                cycles,
                huge_leaf,
            } => {
                o.field_u64("vaddr", vaddr);
                o.field_u64("pte_reads", pte_reads as u64);
                o.field_u64("cycles", cycles as u64);
                o.field_bool("huge_leaf", huge_leaf);
            }
            EventKind::PageFault { vaddr, outcome } => {
                o.field_u64("vaddr", vaddr);
                o.field_str("outcome", outcome.name());
            }
            EventKind::KhugepagedScan {
                regions_scanned,
                promoted,
            } => {
                o.field_u64("regions_scanned", regions_scanned as u64);
                o.field_u64("promoted", promoted as u64);
            }
            EventKind::Promotion { vaddr, compacted } => {
                o.field_u64("vaddr", vaddr);
                o.field_bool("compacted", compacted);
            }
            EventKind::Demotion { vaddr, reason } => {
                o.field_u64("vaddr", vaddr);
                o.field_str("reason", reason.name());
            }
            EventKind::CompactionPass {
                frames_migrated,
                freed,
            } => {
                o.field_u64("frames_migrated", frames_migrated as u64);
                o.field_bool("freed", freed);
            }
            EventKind::Reclaim { kind, frames } => {
                o.field_str("kind", kind.name());
                o.field_u64("frames", frames as u64);
            }
            EventKind::BuddySplit {
                order_from,
                order_to,
                base,
            }
            | EventKind::BuddyMerge {
                order_from,
                order_to,
                base,
            } => {
                o.field_u64("order_from", order_from as u64);
                o.field_u64("order_to", order_to as u64);
                o.field_u64("base", base);
            }
            EventKind::ExperimentRetry { index, attempt } => {
                o.field_u64("index", index as u64);
                o.field_u64("attempt", attempt as u64);
            }
            EventKind::ExperimentFailure { index, attempts }
            | EventKind::ExperimentComplete { index, attempts } => {
                o.field_u64("index", index as u64);
                o.field_u64("attempts", attempts as u64);
            }
            EventKind::BreakerOpen { index, failures } => {
                o.field_u64("index", index as u64);
                o.field_u64("failures", failures as u64);
            }
            EventKind::BreakerClose { index } => {
                o.field_u64("index", index as u64);
            }
            EventKind::GovernorEpoch {
                epoch,
                promoted,
                demoted,
                denied,
            } => {
                o.field_u64("epoch", epoch as u64);
                o.field_u64("promoted", promoted as u64);
                o.field_u64("demoted", demoted as u64);
                o.field_u64("denied", denied as u64);
            }
        }
        o.finish()
    }
}

/// Bitmask selecting which event kinds a tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask(u32);

impl EventMask {
    /// No events.
    pub const NONE: EventMask = EventMask(0);
    /// TLB fills.
    pub const TLB_FILL: EventMask = EventMask(1 << 0);
    /// TLB evictions.
    pub const TLB_EVICT: EventMask = EventMask(1 << 1);
    /// Page-table walks.
    pub const PAGE_WALK: EventMask = EventMask(1 << 2);
    /// Page faults.
    pub const PAGE_FAULT: EventMask = EventMask(1 << 3);
    /// khugepaged scan wake-ups.
    pub const KHUGEPAGED_SCAN: EventMask = EventMask(1 << 4);
    /// Huge-page promotions.
    pub const PROMOTION: EventMask = EventMask(1 << 5);
    /// Huge-page demotions.
    pub const DEMOTION: EventMask = EventMask(1 << 6);
    /// Compaction passes.
    pub const COMPACTION: EventMask = EventMask(1 << 7);
    /// Reclaim / swap traffic.
    pub const RECLAIM: EventMask = EventMask(1 << 8);
    /// Buddy-allocator splits.
    pub const BUDDY_SPLIT: EventMask = EventMask(1 << 9);
    /// Buddy-allocator merges.
    pub const BUDDY_MERGE: EventMask = EventMask(1 << 10);
    /// Supervisor retries of a failed experiment.
    pub const EXPERIMENT_RETRY: EventMask = EventMask(1 << 11);
    /// Supervisor giving up on an experiment.
    pub const EXPERIMENT_FAILURE: EventMask = EventMask(1 << 12);
    /// Supervisor completing an experiment.
    pub const EXPERIMENT_COMPLETE: EventMask = EventMask(1 << 13);
    /// A config's circuit breaker tripping open.
    pub const BREAKER_OPEN: EventMask = EventMask(1 << 14);
    /// A config's circuit breaker closing after a successful probe.
    pub const BREAKER_CLOSE: EventMask = EventMask(1 << 15);
    /// Page-size governor epoch summaries.
    pub const GOVERNOR: EventMask = EventMask(1 << 16);

    /// Per-translation hardware events — enormous volume on real runs.
    pub const HARDWARE: EventMask =
        EventMask(Self::TLB_FILL.0 | Self::TLB_EVICT.0 | Self::PAGE_WALK.0);
    /// OS-level management events — the interesting, low-volume stream.
    pub const OS: EventMask = EventMask(
        Self::PAGE_FAULT.0
            | Self::KHUGEPAGED_SCAN.0
            | Self::PROMOTION.0
            | Self::DEMOTION.0
            | Self::COMPACTION.0
            | Self::RECLAIM.0
            | Self::BUDDY_SPLIT.0
            | Self::BUDDY_MERGE.0
            | Self::GOVERNOR.0,
    );
    /// Sweep-supervisor lifecycle events — a handful per experiment.
    pub const SUPERVISOR: EventMask = EventMask(
        Self::EXPERIMENT_RETRY.0
            | Self::EXPERIMENT_FAILURE.0
            | Self::EXPERIMENT_COMPLETE.0
            | Self::BREAKER_OPEN.0
            | Self::BREAKER_CLOSE.0,
    );
    /// Everything.
    pub const ALL: EventMask = EventMask(Self::HARDWARE.0 | Self::OS.0 | Self::SUPERVISOR.0);

    /// The raw bit representation (stable only within a process).
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Rebuild a mask from [`Self::bits`]. Unknown bits are kept but match
    /// no event kind.
    pub const fn from_bits(bits: u32) -> EventMask {
        EventMask(bits)
    }

    /// Whether every bit of `other` is set in `self`.
    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any bit of `other` is set in `self`.
    pub fn intersects(self, other: EventMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Union of two masks.
    pub fn union(self, other: EventMask) -> EventMask {
        EventMask(self.0 | other.0)
    }
}

impl std::ops::BitOr for EventMask {
    type Output = EventMask;
    fn bitor(self, rhs: EventMask) -> EventMask {
        self.union(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_partition_cleanly() {
        assert!(EventMask::ALL.contains(EventMask::HARDWARE));
        assert!(EventMask::ALL.contains(EventMask::OS));
        assert!(EventMask::ALL.contains(EventMask::SUPERVISOR));
        assert!(!EventMask::OS.intersects(EventMask::HARDWARE));
        assert!(!EventMask::SUPERVISOR.intersects(EventMask::HARDWARE | EventMask::OS));
        assert!(!EventMask::NONE.intersects(EventMask::ALL));
        let m = EventMask::PAGE_FAULT | EventMask::PROMOTION;
        assert!(m.contains(EventMask::PAGE_FAULT));
        assert!(!m.contains(EventMask::DEMOTION));
    }

    #[test]
    fn every_kind_maps_to_its_own_bit() {
        let kinds = [
            EventKind::TlbFill {
                level: TlbLevel::L1,
                huge: false,
                vpn: 0,
            },
            EventKind::TlbEvict {
                level: TlbLevel::Stlb,
                huge: true,
                vpn: 1,
            },
            EventKind::PageWalk {
                vaddr: 0,
                pte_reads: 4,
                cycles: 120,
                huge_leaf: false,
            },
            EventKind::PageFault {
                vaddr: 4096,
                outcome: FaultOutcome::Huge,
            },
            EventKind::KhugepagedScan {
                regions_scanned: 2,
                promoted: 1,
            },
            EventKind::Promotion {
                vaddr: 1 << 21,
                compacted: true,
            },
            EventKind::Demotion {
                vaddr: 0,
                reason: DemotionReason::Utilization,
            },
            EventKind::CompactionPass {
                frames_migrated: 8,
                freed: true,
            },
            EventKind::Reclaim {
                kind: ReclaimKind::SwapOut,
                frames: 1,
            },
            EventKind::BuddySplit {
                order_from: 9,
                order_to: 0,
                base: 512,
            },
            EventKind::BuddyMerge {
                order_from: 0,
                order_to: 1,
                base: 2,
            },
            EventKind::ExperimentRetry {
                index: 3,
                attempt: 1,
            },
            EventKind::ExperimentFailure {
                index: 3,
                attempts: 2,
            },
            EventKind::ExperimentComplete {
                index: 0,
                attempts: 1,
            },
            EventKind::BreakerOpen {
                index: 3,
                failures: 5,
            },
            EventKind::BreakerClose { index: 3 },
            EventKind::GovernorEpoch {
                epoch: 1,
                promoted: 2,
                demoted: 1,
                denied: 0,
            },
        ];
        let mut seen = 0u32;
        for k in kinds {
            let bit = k.mask_bit();
            assert!(
                EventMask::ALL.contains(bit),
                "{} missing from ALL",
                k.name()
            );
            assert!(!EventMask(seen).intersects(bit), "{} bit reused", k.name());
            seen |= bit.0;
        }
    }

    #[test]
    fn json_rendering_is_one_flat_object() {
        let e = Event {
            cycle: 1234,
            kind: EventKind::PageFault {
                vaddr: 0x20_0000,
                outcome: FaultOutcome::HugeFallback,
            },
        };
        assert_eq!(
            e.to_json(),
            r#"{"cycle":1234,"event":"page_fault","vaddr":2097152,"outcome":"huge_fallback"}"#
        );
    }
}
