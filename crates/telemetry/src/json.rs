//! A tiny dependency-free JSON writer and reader.
//!
//! The writer is only what the exporters need: flat or nested objects and
//! arrays built field-by-field with correct escaping and comma placement.
//! Non-finite floats serialize as `null` (JSON has no NaN/Infinity).
//!
//! The reader ([`JsonValue::parse`]) exists so run manifests and reports
//! written by this crate can be loaded back (checkpoint/resume): integers
//! are kept as integers (no `f64` round-trip), and floats written with
//! Rust's shortest-round-trip formatting parse back bit-identical.

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value (`null` when non-finite).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental builder for one JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a string field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Add a pre-rendered JSON value (object, array, …) verbatim.
    pub fn field_raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return its text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// A parsed JSON value.
///
/// Integer-looking numbers are kept as [`JsonValue::UInt`]/[`JsonValue::Int`]
/// so `u64` counters survive a write/parse round trip exactly; everything
/// else lands in [`JsonValue::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    UInt(u64),
    /// A negative integer without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array, in document order.
    Array(Vec<JsonValue>),
    /// An object, fields in document order (duplicate keys keep both).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse one complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up a field of an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.pos))
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            None => self.err("unexpected end of input"),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 1; // the '\'; hex4 eats the 'u'
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            continue; // hex4 advanced pos past the digits
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8".to_string())?,
                    );
                }
            }
        }
    }

    /// Four hex digits after `\u`; leaves `pos` on the byte after them.
    fn hex4(&mut self) -> Result<u32, String> {
        self.pos += 1; // the 'u'
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match digits {
            Some(v) => {
                self.pos = end;
                Ok(v)
            }
            None => self.err("invalid \\u escape"),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(JsonValue::Float(v)),
            Err(_) => Err(format!("invalid number '{text}' at byte {start}")),
        }
    }
}

/// Render an array of pre-rendered JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builds_in_order() {
        let mut o = JsonObject::new();
        o.field_u64("a", 1)
            .field_str("b", "x\"y")
            .field_bool("c", false)
            .field_f64("d", 0.5)
            .field_f64("e", f64::NAN)
            .field_raw("f", "[1,2]");
        assert_eq!(
            o.finish(),
            r#"{"a":1,"b":"x\"y","c":false,"d":0.5,"e":null,"f":[1,2]}"#
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(Vec::<String>::new()), "[]");
        assert_eq!(array(vec!["1".into(), "2".into()]), "[1,2]");
    }

    #[test]
    fn parser_reads_back_writer_output() {
        let mut o = JsonObject::new();
        o.field_u64("a", u64::MAX)
            .field_str("b", "x\"y\n\\z")
            .field_bool("c", false)
            .field_f64("d", 0.1 + 0.2)
            .field_f64("e", f64::NAN)
            .field_raw("f", "[1,2.5,-3]");
        let v = JsonValue::parse(&o.finish()).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y\n\\z"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(0.1 + 0.2));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
        let f = v.get("f").unwrap().as_array().unwrap();
        assert_eq!(f[0], JsonValue::UInt(1));
        assert_eq!(f[1], JsonValue::Float(2.5));
        assert_eq!(f[2], JsonValue::Int(-3));
    }

    #[test]
    fn parser_handles_nesting_whitespace_and_unicode() {
        let v = JsonValue::parse(" { \"a\" : [ { \"b\" : \"\\u00e9\\ud83d\\ude00\" } , null ] } ")
            .unwrap();
        let inner = &v.get("a").unwrap().as_array().unwrap()[0];
        assert_eq!(inner.get("b").unwrap().as_str(), Some("é😀"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1], JsonValue::Null);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "{\"a\":\"\\q\"}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        // Exercise the integer path: values above 2^53 lose precision
        // through f64, so they must stay integers.
        let big = (1u64 << 53) + 1;
        let v = JsonValue::parse(&format!("{{\"n\":{big}}}")).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(big));
    }
}
