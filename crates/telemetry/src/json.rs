//! A tiny dependency-free JSON writer.
//!
//! Only what the exporters need: flat or nested objects and arrays built
//! field-by-field with correct escaping and comma placement. Non-finite
//! floats serialize as `null` (JSON has no NaN/Infinity).

/// Escape a string for inclusion inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value (`null` when non-finite).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental builder for one JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a string field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Add a pre-rendered JSON value (object, array, …) verbatim.
    pub fn field_raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return its text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render an array of pre-rendered JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builds_in_order() {
        let mut o = JsonObject::new();
        o.field_u64("a", 1)
            .field_str("b", "x\"y")
            .field_bool("c", false)
            .field_f64("d", 0.5)
            .field_f64("e", f64::NAN)
            .field_raw("f", "[1,2]");
        assert_eq!(
            o.finish(),
            r#"{"a":1,"b":"x\"y","c":false,"d":0.5,"e":null,"f":[1,2]}"#
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(Vec::<String>::new()), "[]");
        assert_eq!(array(vec!["1".into(), "2".into()]), "[1,2]");
    }
}
