//! The event tracer: a cheap-clone handle shared by every simulator layer.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventKind, EventMask};

/// Destination for traced events (e.g. a JSONL file).
///
/// Sinks receive events in emission order. `record` must not touch simulator
/// state; it only serializes. Sinks are `Send` so a tracer handle can ride
/// inside experiment configurations that cross threads (sweep runners).
pub trait EventSink: Send {
    /// Consume one event.
    fn record(&mut self, event: &Event);
    /// Flush any buffered output.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Sink writing one JSON object per line (JSON Lines).
pub struct JsonlSink<W: Write> {
    out: BufWriter<W>,
}

impl JsonlSink<File> {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            out: BufWriter::new(writer),
        }
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        // Serialization errors must not abort a simulation; drop the line.
        let _ = writeln!(self.out, "{}", event.to_json());
    }
    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Counters describing what a tracer has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events that passed the mask and were recorded.
    pub emitted: u64,
    /// Events displaced from the ring buffer by capacity pressure
    /// (still delivered to the sink, if one is attached).
    pub dropped_from_ring: u64,
}

/// Tracer configuration.
pub struct TraceConfig {
    /// Which event kinds to record.
    pub mask: EventMask,
    /// Ring-buffer capacity in events.
    pub ring_capacity: usize,
    /// Optional streaming sink.
    pub sink: Option<Box<dyn EventSink>>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mask: EventMask::OS,
            ring_capacity: 65_536,
            sink: None,
        }
    }
}

impl TraceConfig {
    /// Select which event kinds to record.
    pub fn mask(mut self, mask: EventMask) -> Self {
        self.mask = mask;
        self
    }

    /// Bound the in-memory ring buffer.
    pub fn ring_capacity(mut self, events: usize) -> Self {
        self.ring_capacity = events;
        self
    }

    /// Stream events to `sink` as they are emitted.
    pub fn sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sink = Some(sink);
        self
    }
}

struct TraceBuffer {
    ring: VecDeque<Event>,
    capacity: usize,
    sink: Option<Box<dyn EventSink>>,
    stats: TraceStats,
}

struct Shared {
    clock: AtomicU64,
    mask: AtomicU32,
    buf: Mutex<TraceBuffer>,
}

/// Handle to a trace session, cloned into every instrumented layer.
///
/// A disabled tracer (the default) is a `None` — instrumentation sites pay a
/// single branch and emit nothing. All clones share one clock, mask, ring
/// buffer, and sink; the simulation driver advances the clock, the layers
/// emit. The handle is `Send`, so an experiment configuration carrying one
/// can be dispatched to a worker thread; each simulation remains
/// single-threaded, the atomics only make the handoff sound.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(s) => write!(
                f,
                "Tracer(clock={}, emitted={})",
                s.clock.load(Ordering::Relaxed),
                s.buf.lock().map_or(0, |b| b.stats.emitted)
            ),
        }
    }
}

impl Tracer {
    /// A tracer that records nothing and costs one branch per emit site.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An active tracer with the given configuration.
    pub fn enabled(config: TraceConfig) -> Self {
        Tracer {
            inner: Some(Arc::new(Shared {
                clock: AtomicU64::new(0),
                mask: AtomicU32::new(config.mask.bits()),
                buf: Mutex::new(TraceBuffer {
                    ring: VecDeque::with_capacity(config.ring_capacity.min(4096)),
                    capacity: config.ring_capacity,
                    sink: config.sink,
                    stats: TraceStats::default(),
                }),
            })),
        }
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Cheap pre-check for hot paths: is any bit of `mask` being recorded?
    ///
    /// Call this before constructing an event payload so a disabled (or
    /// masked-off) tracer costs no payload construction.
    #[inline]
    pub fn wants(&self, mask: EventMask) -> bool {
        match &self.inner {
            None => false,
            Some(s) => EventMask::from_bits(s.mask.load(Ordering::Relaxed)).intersects(mask),
        }
    }

    /// Advance the shared cycle clock (driver only).
    #[inline]
    pub fn set_clock(&self, cycle: u64) {
        if let Some(s) = &self.inner {
            s.clock.store(cycle, Ordering::Relaxed);
        }
    }

    /// Current cycle stamp.
    pub fn clock(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.clock.load(Ordering::Relaxed))
    }

    /// Replace the recording mask.
    pub fn set_mask(&self, mask: EventMask) {
        if let Some(s) = &self.inner {
            s.mask.store(mask.bits(), Ordering::Relaxed);
        }
    }

    /// Current recording mask ([`EventMask::NONE`] when disabled).
    pub fn mask(&self) -> EventMask {
        self.inner.as_ref().map_or(EventMask::NONE, |s| {
            EventMask::from_bits(s.mask.load(Ordering::Relaxed))
        })
    }

    /// Record `kind` at the current clock, if enabled and selected.
    pub fn emit(&self, kind: EventKind) {
        let Some(s) = &self.inner else { return };
        if !EventMask::from_bits(s.mask.load(Ordering::Relaxed)).intersects(kind.mask_bit()) {
            return;
        }
        let event = Event {
            cycle: s.clock.load(Ordering::Relaxed),
            kind,
        };
        let mut buf = s.buf.lock().expect("tracer buffer poisoned");
        buf.stats.emitted += 1;
        if let Some(sink) = buf.sink.as_mut() {
            sink.record(&event);
        }
        if buf.capacity > 0 {
            if buf.ring.len() == buf.capacity {
                buf.ring.pop_front();
                buf.stats.dropped_from_ring += 1;
            }
            buf.ring.push_back(event);
        }
    }

    /// Snapshot of the ring buffer, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |s| {
            s.buf
                .lock()
                .expect("tracer buffer poisoned")
                .ring
                .iter()
                .copied()
                .collect()
        })
    }

    /// Emission counters.
    pub fn stats(&self) -> TraceStats {
        self.inner.as_ref().map_or_else(TraceStats::default, |s| {
            s.buf.lock().expect("tracer buffer poisoned").stats
        })
    }

    /// Flush the attached sink, if any.
    pub fn flush(&self) -> io::Result<()> {
        match &self.inner {
            None => Ok(()),
            Some(s) => match s.buf.lock().expect("tracer buffer poisoned").sink.as_mut() {
                None => Ok(()),
                Some(sink) => sink.flush(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultOutcome;
    use std::sync::mpsc;

    fn fault(vaddr: u64) -> EventKind {
        EventKind::PageFault {
            vaddr,
            outcome: FaultOutcome::Base,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.wants(EventMask::ALL));
        t.set_clock(99);
        t.emit(fault(0));
        assert!(t.events().is_empty());
        assert_eq!(t.stats(), TraceStats::default());
    }

    #[test]
    fn events_are_cycle_stamped_and_shared_across_clones() {
        let t = Tracer::enabled(TraceConfig::default());
        let layer = t.clone();
        t.set_clock(10);
        layer.emit(fault(4096));
        t.set_clock(20);
        layer.emit(fault(8192));
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert_eq!((ev[0].cycle, ev[1].cycle), (10, 20));
        assert_eq!(t.stats().emitted, 2);
    }

    #[test]
    fn mask_filters_events() {
        let t = Tracer::enabled(TraceConfig::default().mask(EventMask::PROMOTION));
        assert!(t.wants(EventMask::PROMOTION | EventMask::PAGE_FAULT));
        assert!(!t.wants(EventMask::PAGE_FAULT));
        t.emit(fault(0));
        t.emit(EventKind::Promotion {
            vaddr: 0,
            compacted: false,
        });
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.stats().emitted, 1);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let t = Tracer::enabled(TraceConfig::default().ring_capacity(3));
        for i in 0..10 {
            t.set_clock(i);
            t.emit(fault(i * 4096));
        }
        let ev = t.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].cycle, 7);
        assert_eq!(ev[2].cycle, 9);
        let s = t.stats();
        assert_eq!(s.emitted, 10);
        assert_eq!(s.dropped_from_ring, 7);
    }

    struct ChannelSink(mpsc::Sender<Event>);
    impl EventSink for ChannelSink {
        fn record(&mut self, event: &Event) {
            self.0.send(*event).unwrap();
        }
    }

    #[test]
    fn sink_sees_every_emitted_event_even_past_ring_capacity() {
        let (tx, rx) = mpsc::channel();
        let t = Tracer::enabled(
            TraceConfig::default()
                .ring_capacity(2)
                .sink(Box::new(ChannelSink(tx))),
        );
        for i in 0..5 {
            t.set_clock(i);
            t.emit(fault(i));
        }
        drop(t);
        assert_eq!(rx.iter().count(), 5);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&Event {
            cycle: 1,
            kind: fault(4096),
        });
        sink.record(&Event {
            cycle: 2,
            kind: fault(8192),
        });
        sink.flush().unwrap();
        let text = String::from_utf8(sink.out.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"cycle":1,"event":"page_fault""#));
    }
}
