//! Log₂-bucketed histograms for latency-style distributions.
//!
//! A [`Histogram`] records `u64` samples into power-of-two buckets: bucket
//! 0 holds the value 0, bucket `i` (for `i ≥ 1`) holds values in
//! `[2^(i-1), 2^i - 1]`. This matches how page-walk latencies spread —
//! a PWC-assisted walk costs tens of cycles, a cold four-level walk with
//! DRAM PTE reads costs hundreds — so one log₂ bucket per doubling keeps
//! the whole distribution in ~16 counters with no configuration.
//!
//! Like every observability type in this crate, recording never touches
//! the simulated clock or any performance counter.

use crate::json::{self, JsonObject, JsonValue};

/// A log₂-bucketed histogram of `u64` samples.
///
/// The bucket vector only grows as large as the biggest sample requires,
/// so an empty histogram allocates nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else `ilog2(v) + 1`.
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            v.ilog2() as usize + 1
        }
    }

    /// Inclusive `[lo, hi]` value range covered by bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            (lo, hi)
        }
    }

    /// Record one sample. The running sum saturates rather than wrap, so
    /// pathological values (e.g. `u64::MAX` sentinels) cannot corrupt it.
    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or `None` when empty. A log₂ histogram can only
    /// answer to bucket granularity; the bound is conservative (≥ the true
    /// quantile).
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_bounds(i).1);
            }
        }
        Some(Self::bucket_bounds(self.buckets.len().saturating_sub(1)).1)
    }

    /// Serialize as a JSON object: `{"count":…,"sum":…,"buckets":[…]}`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("count", self.count)
            .field_u64("sum", self.sum)
            .field_raw(
                "buckets",
                &json::array(self.buckets.iter().map(|b| b.to_string())),
            );
        o.finish()
    }

    /// Rebuild from a parsed [`JsonValue`] (inverse of [`Self::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let count = v
            .get("count")
            .and_then(JsonValue::as_u64)
            .ok_or("histogram: missing count")?;
        let sum = v
            .get("sum")
            .and_then(JsonValue::as_u64)
            .ok_or("histogram: missing sum")?;
        let buckets = v
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or("histogram: missing buckets")?
            .iter()
            .map(|b| {
                b.as_u64()
                    .ok_or_else(|| "histogram: bad bucket".to_string())
            })
            .collect::<Result<Vec<u64>, String>>()?;
        Ok(Histogram {
            buckets,
            count,
            sum,
        })
    }

    /// CSV rendering: `bucket_lo,bucket_hi,count` rows, header included.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bucket_lo,bucket_hi,count\n");
        for (i, &c) in self.buckets.iter().enumerate() {
            let (lo, hi) = Self::bucket_bounds(i);
            out.push_str(&format!("{lo},{hi},{c}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_partition_u64() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for i in 0..=64usize {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_of(lo), i);
            assert_eq!(Histogram::bucket_of(hi), i);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn record_accumulates_count_sum_and_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 206);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[7], 2); // 100 ∈ [64,127]
        assert!((h.mean() - 206.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [5, 9, 1000] {
            a.record(v);
            whole.record(v);
        }
        for v in [0, 7, 64, 1 << 40] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn quantile_bound_is_conservative() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_bound(0.5), None);
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 of 1..=100 is 50 → bucket [32,63] upper bound 63.
        assert_eq!(h.quantile_bound(0.5), Some(63));
        assert_eq!(h.quantile_bound(1.0), Some(127));
        assert!(h.quantile_bound(0.5).unwrap() >= 50);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let mut h = Histogram::new();
        for v in [0, 3, 17, 900, u64::MAX] {
            h.record(v);
        }
        let text = h.to_json();
        let back = Histogram::from_json_value(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn empty_histogram_round_trips() {
        let h = Histogram::new();
        let back = Histogram::from_json_value(&JsonValue::parse(&h.to_json()).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(h.to_csv(), "bucket_lo,bucket_hi,count\n");
    }

    #[test]
    fn csv_lists_every_bucket_up_to_max_sample() {
        let mut h = Histogram::new();
        h.record(9); // bucket 4: [8,15]
        let csv = h.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6); // header + buckets 0..=4
        assert_eq!(lines[5], "8,15,1");
    }
}
