//! Observability substrate for the graphmem simulator.
//!
//! Three pieces, all deterministic and all zero-cost when disabled:
//!
//! 1. **Event tracing** ([`Tracer`], [`Event`], [`EventSink`]): typed,
//!    cycle-stamped events emitted from the hardware model (TLB fills and
//!    evictions, page walks), the OS model (page faults, khugepaged scans,
//!    promotions/demotions, compaction, reclaim, swap), and the physical
//!    memory model (buddy splits and merges). Events land in a bounded ring
//!    buffer and/or stream to a pluggable sink such as a JSONL file.
//! 2. **Epoch sampling** ([`EpochSampler`], [`MetricsSample`],
//!    [`MetricsSeries`]): a cumulative metrics snapshot taken every N
//!    simulated cycles, forming a time series that rides along on the run
//!    report. Per-epoch deltas (miss rates, faults/cycle) are derived from
//!    adjacent cumulative samples, so the series always sums back to the
//!    final aggregate counters.
//! 3. **Exporters**: JSONL for events, CSV for the time series, plus a tiny
//!    dependency-free JSON writer ([`json`]) shared with
//!    `RunReport::to_json`.
//!
//! The handle type [`Tracer`] is a cheap clone (`Option<Arc<..>>`): a
//! disabled tracer is `None`, so instrumented hot paths pay one branch and no
//! allocation. Emitting an event never touches the simulated clock or any
//! performance counter — observation cannot perturb the simulation.

#![warn(missing_docs)]

pub mod event;
pub mod histogram;
pub mod json;
pub mod memstate;
pub mod metrics;
pub mod trace;

pub use event::{DemotionReason, Event, EventKind, EventMask, FaultOutcome, ReclaimKind, TlbLevel};
pub use histogram::Histogram;
pub use memstate::{MemStateSample, MemStateSeries};
pub use metrics::{EpochSampler, MetricsSample, MetricsSeries};
pub use trace::{EventSink, JsonlSink, TraceConfig, TraceStats, Tracer};
