//! Per-epoch snapshots of physical-memory and mapping state.
//!
//! [`MetricsSample`](crate::MetricsSample) captures *hardware and OS
//! counters*; this module captures the complementary *memory state*: the
//! buddy allocator's free lists (`/proc/buddyinfo` style), the paper's
//! fragmentation / unusable-free-space index, and per-region huge-page
//! coverage. A [`MemStateSeries`] rides along on the run report only when
//! attribution is enabled, so the default report format is unchanged.
//!
//! Coverage vectors may be *ragged*: regions mapped mid-run simply start
//! appearing in later samples. The series keeps the region-name list so
//! column `i` of a coverage vector is always `regions()[i]`.

use std::io::{self, Write};
use std::path::Path;

use crate::json::{self, JsonObject, JsonValue};

/// One snapshot of zone + mapping state at a simulated cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStateSample {
    /// Simulated cycle the snapshot was taken at.
    pub cycle: u64,
    /// Free base frames in the zone.
    pub free_frames: u64,
    /// Fully-free huge blocks (order `huge_order` buddies).
    pub free_huge_blocks: u64,
    /// Fraction of free memory unusable for huge allocations (the paper's
    /// §4.4.1 fragmentation metric; 0 = pristine, 1 = fully fragmented).
    pub unusable_index: f64,
    /// Free block counts per order, `buddy[o]` = free blocks of order `o`
    /// (`/proc/buddyinfo` row for the zone).
    pub buddy: Vec<u64>,
    /// Huge-page coverage fraction per tracked region, aligned with
    /// [`MemStateSeries::regions`]; may be shorter than the final region
    /// list if regions were mapped after this sample.
    pub coverage: Vec<f64>,
}

impl MemStateSample {
    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("cycle", self.cycle)
            .field_u64("free_frames", self.free_frames)
            .field_u64("free_huge_blocks", self.free_huge_blocks)
            .field_f64("unusable_index", self.unusable_index)
            .field_raw(
                "buddy",
                &json::array(self.buddy.iter().map(|b| b.to_string())),
            )
            .field_raw(
                "coverage",
                &json::array(self.coverage.iter().map(|c| json::number(*c))),
            );
        o.finish()
    }

    /// Rebuild from a parsed [`JsonValue`] (inverse of [`Self::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let u = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("memstate field '{k}' missing or not an integer"))
        };
        let buddy = v
            .get("buddy")
            .and_then(JsonValue::as_array)
            .ok_or("memstate field 'buddy' missing")?
            .iter()
            .map(|b| {
                b.as_u64()
                    .ok_or_else(|| "memstate: bad buddy count".to_string())
            })
            .collect::<Result<Vec<u64>, String>>()?;
        let coverage = v
            .get("coverage")
            .and_then(JsonValue::as_array)
            .ok_or("memstate field 'coverage' missing")?
            .iter()
            .map(|c| {
                c.as_f64()
                    .ok_or_else(|| "memstate: bad coverage value".to_string())
            })
            .collect::<Result<Vec<f64>, String>>()?;
        Ok(MemStateSample {
            cycle: u("cycle")?,
            free_frames: u("free_frames")?,
            free_huge_blocks: u("free_huge_blocks")?,
            unusable_index: v
                .get("unusable_index")
                .and_then(JsonValue::as_f64)
                .ok_or("memstate field 'unusable_index' missing")?,
            buddy,
            coverage,
        })
    }
}

/// A time-ordered series of [`MemStateSample`]s plus the region names the
/// coverage columns refer to.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStateSeries {
    regions: Vec<String>,
    samples: Vec<MemStateSample>,
}

impl MemStateSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the (current, possibly grown) list of tracked region names.
    /// The list only ever extends: regions are never dropped mid-run.
    pub fn note_regions(&mut self, names: &[String]) {
        if names.len() > self.regions.len() {
            self.regions = names.to_vec();
        }
    }

    /// Append a snapshot (must be in time order).
    pub fn push(&mut self, sample: MemStateSample) {
        if let Some(last) = self.samples.last() {
            debug_assert!(sample.cycle >= last.cycle, "samples must be in time order");
        }
        self.samples.push(sample);
    }

    /// Region names the coverage columns are aligned with.
    pub fn regions(&self) -> &[String] {
        &self.regions
    }

    /// All snapshots, oldest first.
    pub fn samples(&self) -> &[MemStateSample] {
        &self.samples
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no snapshot has been taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serialize as a JSON object: `{"regions":[…],"samples":[…]}`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_raw(
            "regions",
            &json::array(
                self.regions
                    .iter()
                    .map(|r| format!("\"{}\"", json::escape(r))),
            ),
        )
        .field_raw(
            "samples",
            &json::array(self.samples.iter().map(MemStateSample::to_json)),
        );
        o.finish()
    }

    /// Rebuild from a parsed [`JsonValue`] (inverse of [`Self::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let regions = v
            .get("regions")
            .and_then(JsonValue::as_array)
            .ok_or("memstate series field 'regions' missing")?
            .iter()
            .map(|r| {
                r.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "memstate: bad region name".to_string())
            })
            .collect::<Result<Vec<String>, String>>()?;
        let samples = v
            .get("samples")
            .and_then(JsonValue::as_array)
            .ok_or("memstate series field 'samples' missing")?
            .iter()
            .map(MemStateSample::from_json_value)
            .collect::<Result<Vec<MemStateSample>, String>>()?;
        Ok(MemStateSeries { regions, samples })
    }

    /// CSV rendering. Buddy columns are `buddy_o<order>`; coverage columns
    /// are `cov_<region>`. Samples taken before a region was mapped leave
    /// its coverage cell empty.
    pub fn to_csv(&self) -> String {
        let orders = self
            .samples
            .iter()
            .map(|s| s.buddy.len())
            .max()
            .unwrap_or(0);
        let mut out = String::from("cycle,free_frames,free_huge_blocks,unusable_index");
        for o in 0..orders {
            out.push_str(&format!(",buddy_o{o}"));
        }
        for r in &self.regions {
            out.push_str(&format!(",cov_{r}"));
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{}",
                s.cycle, s.free_frames, s.free_huge_blocks, s.unusable_index
            ));
            for o in 0..orders {
                out.push_str(&format!(",{}", s.buddy.get(o).copied().unwrap_or(0)));
            }
            for i in 0..self.regions.len() {
                match s.coverage.get(i) {
                    Some(c) => out.push_str(&format!(",{c}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Write [`Self::to_csv`] to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64, cov: &[f64]) -> MemStateSample {
        MemStateSample {
            cycle,
            free_frames: 4096 - cycle,
            free_huge_blocks: 8,
            unusable_index: 0.25,
            buddy: vec![3, 2, 1, 0, 8],
            coverage: cov.to_vec(),
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let mut s = MemStateSeries::new();
        s.note_regions(&["vertex_array".to_string()]);
        s.push(sample(100, &[0.5]));
        s.note_regions(&["vertex_array".to_string(), "dist".to_string()]);
        s.push(sample(200, &[0.5, 0.875]));
        let text = s.to_json();
        let back = MemStateSeries::from_json_value(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn ragged_coverage_pads_csv_cells() {
        let mut s = MemStateSeries::new();
        s.push(sample(100, &[]));
        s.note_regions(&["a".to_string(), "b".to_string()]);
        s.push(sample(200, &[0.5, 1.0]));
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "cycle,free_frames,free_huge_blocks,unusable_index,buddy_o0,buddy_o1,buddy_o2,buddy_o3,buddy_o4,cov_a,cov_b"
        );
        assert!(
            lines[1].ends_with(",,"),
            "pre-map sample pads coverage: {}",
            lines[1]
        );
        assert!(
            lines[2].ends_with(",0.5,1"),
            "mapped sample has values: {}",
            lines[2]
        );
    }

    #[test]
    fn note_regions_only_extends() {
        let mut s = MemStateSeries::new();
        s.note_regions(&["a".to_string(), "b".to_string()]);
        s.note_regions(&["a".to_string()]);
        assert_eq!(s.regions().len(), 2);
    }

    #[test]
    fn empty_series_round_trips() {
        let s = MemStateSeries::new();
        let back =
            MemStateSeries::from_json_value(&JsonValue::parse(&s.to_json()).unwrap()).unwrap();
        assert_eq!(back, s);
        assert!(back.is_empty());
        assert_eq!(back.len(), 0);
    }
}
