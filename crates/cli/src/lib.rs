//! # graphmem-cli — command-line driver for graphmem experiments
//!
//! Parsing and execution logic for the `graphmem` binary, separated from
//! `main.rs` so it can be unit-tested. No external argument-parsing
//! dependencies: the grammar is small and stable.
//!
//! ```text
//! graphmem run   [OPTIONS]             # one measured experiment
//! graphmem sweep <pressure|frag|selectivity> [OPTIONS]
//! graphmem serve [OPTIONS]             # concurrent experiment service
//! graphmem submit [OPTIONS]            # send a spec to a running service
//! graphmem datasets                    # list dataset presets
//! graphmem help
//! ```

#![warn(missing_docs)]

mod parse;
mod run;

pub use parse::{parse, Command, ExecArgs, ParseError, RunArgs, ServeArgs, SubmitArgs};
pub use run::{execute, EXIT_FAILURE, EXIT_INTERRUPTED, EXIT_OK, EXIT_PARTIAL, EXIT_USAGE};

/// The usage text shown by `graphmem help` and on parse errors.
pub const USAGE: &str = "\
graphmem — application-aware page size management for graph analytics
(reproduction of Manocha et al., IISWC 2022)

USAGE:
    graphmem run   [OPTIONS]                 run one measured experiment
    graphmem sweep <pressure|frag|selectivity> [OPTIONS]
    graphmem serve [OPTIONS]                 start the experiment service
    graphmem submit [OPTIONS]                submit a spec to a running service
    graphmem datasets                        list dataset presets
    graphmem help                            show this text

OPTIONS (run, sweep, and submit):
    --dataset <kron|twit|web|wiki>           input graph      [kron]
    --kernel  <bfs|pr|sssp|cc>               application      [bfs]
    --scale   <N>                            log2 vertices    [dataset default]
    --policy  <4k|thp|property|hugetlb|selective:F|auto:C>    [4k]
                                             F = property fraction 0..1
                                             C = access coverage 0..1
    --governor <k=v,...>                     closed-loop page-size governor [off];
                                             keys epoch=<cycles>, promote=<cost>,
                                             demote=<cost>, max=<actions/epoch>
                                             (missing keys take defaults)
    --khugepaged <on|off>                    override background promotion daemon
    --khugepaged-interval <N>                khugepaged scan interval, cycles
    --defrag-blocks <N>                      fault-time compaction budget, pageblocks
    --preprocess <none|dbg|sort|random>      vertex reorder   [none]
    --order   <natural|property-first>       first-touch order [natural]
    --surplus <unbounded|FRAC|bytes:N>       free mem = WSS*(1+FRAC) [unbounded]
    --frag    <F>                            non-movable fragmentation 0..1 [0]
    --file    <tmpfs|cache|direct>           graph loading    [tmpfs]
    --seed-offset <N>                        generator seed perturbation [0]
    --no-verify                              skip native-twin verification
    --sample-interval <N>                    snapshot metrics every N cycles

SWEEP (sweep only):
    --threads <N>                            worker threads [all cores]
    --manifest <PATH>                        checkpoint completed reports to PATH (JSONL)
    --resume <PATH>                          skip configs already completed in PATH
    --retries <N>                            retry transient failures N times [0]
    --timeout <SECS>                         per-experiment wall-clock watchdog
    --chaos <K@I,...>                        inject faults (testing/CI only):
                                             compute kinds panic|io|delay:<ms> fire at
                                             grid index I; IO kinds eio|enospc|io-torn
                                             fire at durable-write index I
    --fsync <always|never|every:N>           manifest fsync cadence [always]

SERVE (serve only):
    --addr <HOST:PORT>                       bind address [127.0.0.1:7171]
    --workers <N>                            experiment worker threads [2]
    --queue <N>                              max queued configs before 429 [64]
    --cache-dir <DIR>                        durable result store (JSONL shards)
    --retries <N>                            supervisor retries per config [1]
    --timeout <SECS>                         per-config watchdog
    --fsync <always|never|every:N>           result-store fsync cadence [always]
    --chaos <K@I,...>                        inject faults (same grammar as sweep);
                                             compute kinds fire at the Ith executed
                                             config, IO kinds at the Ith store append
    --breaker <K>                            open a config's circuit after K straight
                                             panic/timeout failures (0 disables) [5]
    --breaker-cooldown <SECS>                open -> half-open probe delay [10]

SUBMIT (submit only):
    --addr <HOST:PORT>                       service address [127.0.0.1:7171]
    --sweep <pressure|frag|selectivity>      expand into a sweep grid server-side
    --json                                   echo raw progress JSONL

TELEMETRY (run only):
    --telemetry <PATH>                       stream kernel events to PATH (JSONL)
    --series <PATH>                          write the sampled series to PATH (CSV);
                                             with --attribution also writes
                                             PATH.memstate.csv (fragmentation/coverage)
    --attribution                            per-array TLB/walk attribution profile
                                             (table in prose mode, \"attribution\" key
                                             in --json reports)
    --engine <batched|legacy>                access engine [batched]; 'legacy' forces
                                             the element-at-a-time oracle pipeline
                                             (bit-identical reports, slower)
    --json                                   print the report as one JSON object

EXIT CODES:
    0   success                3   sweep/job finished with some failed configs
    1   command failed         130 interrupted (completed work is flushed)
    2   usage error

EXAMPLES:
    graphmem run --dataset kron --kernel bfs --policy thp --surplus 0.12
    graphmem run --policy selective:0.2 --preprocess dbg --frag 0.5 --surplus 0.35
    graphmem run --policy thp --telemetry t.jsonl --sample-interval 100000 --json
    graphmem run --policy 4k --attribution --sample-interval 100000 --series s.csv
    graphmem run --policy thp --governor epoch=5000000,promote=1.5 --frag 0.6 --json
    graphmem sweep selectivity --dataset twit --preprocess dbg --frag 0.5
    graphmem sweep pressure --policy thp --manifest runs.jsonl --retries 2 --timeout 600
    graphmem serve --workers 4 --cache-dir results/
    graphmem submit --sweep pressure --dataset wiki --scale 12 --policy thp
";
