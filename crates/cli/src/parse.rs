//! Argument parsing for the `graphmem` binary.

use graphmem_core::{FaultSpec, MemoryCondition, PagePolicy, Preprocessing, Surplus};
use graphmem_graph::Dataset;
use graphmem_os::FilePlacement;
use graphmem_workloads::{AllocOrder, Kernel};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `graphmem run`
    Run(RunSpec),
    /// `graphmem sweep <kind>`
    Sweep(SweepKind, RunSpec),
    /// `graphmem datasets`
    Datasets,
    /// `graphmem help`
    Help,
}

/// Which parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Free-memory surplus ladder (§4.3.1).
    Pressure,
    /// Fragmentation levels (Fig. 9).
    Fragmentation,
    /// Selective-THP fractions (Fig. 11).
    Selectivity,
}

/// Everything needed to build an [`Experiment`](graphmem_core::Experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Input graph preset.
    pub dataset: Dataset,
    /// Application kernel.
    pub kernel: Kernel,
    /// Optional scale override (log2 vertices).
    pub scale: Option<u8>,
    /// Page-size policy.
    pub policy: PagePolicy,
    /// Vertex reordering.
    pub preprocess: Preprocessing,
    /// First-touch order.
    pub order: AllocOrder,
    /// Memory condition.
    pub condition: MemoryCondition,
    /// File-loading placement.
    pub file: FilePlacement,
    /// Verify against the native twin.
    pub verify: bool,
    /// Stream telemetry events to this JSONL file.
    pub telemetry: Option<String>,
    /// Epoch-sample metrics every N simulated cycles.
    pub sample_interval: Option<u64>,
    /// Write the sampled metrics series to this CSV file.
    pub series: Option<String>,
    /// Print the report as one JSON object instead of prose.
    pub json: bool,
    /// Worker threads for `sweep` (defaults to the machine's parallelism).
    pub threads: Option<usize>,
    /// Append completed sweep reports to this JSONL run-manifest.
    pub manifest: Option<String>,
    /// Skip sweep configs already completed in this manifest.
    pub resume: Option<String>,
    /// Retries per experiment for transient failures.
    pub retries: u32,
    /// Per-experiment wall-clock watchdog, in seconds.
    pub timeout_secs: Option<f64>,
    /// Deterministic fault injections, as `(grid index, fault)` pairs.
    pub chaos: Vec<(usize, FaultSpec)>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            dataset: Dataset::Kron25,
            kernel: Kernel::Bfs,
            scale: None,
            policy: PagePolicy::BaseOnly,
            preprocess: Preprocessing::None,
            order: AllocOrder::Natural,
            condition: MemoryCondition::unbounded(),
            file: FilePlacement::TmpfsRemote,
            verify: true,
            telemetry: None,
            sample_interval: None,
            series: None,
            json: false,
            threads: None,
            manifest: None,
            resume: None,
            retries: 0,
            timeout_secs: None,
            chaos: Vec::new(),
        }
    }
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parse a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`ParseError`] with a message suitable for direct display.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("datasets") => Ok(Command::Datasets),
        Some("run") => Ok(Command::Run(parse_spec(it.as_slice())?)),
        Some("sweep") => {
            let kind = match it.next().map(String::as_str) {
                Some("pressure") => SweepKind::Pressure,
                Some("frag") | Some("fragmentation") => SweepKind::Fragmentation,
                Some("selectivity") => SweepKind::Selectivity,
                other => {
                    return err(format!(
                        "sweep needs one of pressure|frag|selectivity, got {other:?}"
                    ))
                }
            };
            Ok(Command::Sweep(kind, parse_spec(it.as_slice())?))
        }
        Some(other) => err(format!("unknown command '{other}' (try 'graphmem help')")),
    }
}

fn parse_spec(args: &[String]) -> Result<RunSpec, ParseError> {
    let mut spec = RunSpec::default();
    let mut surplus: Option<Surplus> = None;
    let mut frag: f64 = 0.0;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || -> Result<&String, ParseError> {
            it.next()
                .ok_or_else(|| ParseError(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--dataset" => {
                spec.dataset = match value()?.as_str() {
                    "kron" => Dataset::Kron25,
                    "twit" | "twitter" => Dataset::Twitter,
                    "web" => Dataset::Web,
                    "wiki" => Dataset::Wiki,
                    other => return err(format!("unknown dataset '{other}'")),
                }
            }
            "--kernel" => {
                spec.kernel = match value()?.as_str() {
                    "bfs" => Kernel::Bfs,
                    "pr" | "pagerank" => Kernel::Pagerank,
                    "sssp" => Kernel::Sssp,
                    "cc" => Kernel::Cc,
                    other => return err(format!("unknown kernel '{other}'")),
                }
            }
            "--scale" => {
                spec.scale = Some(
                    value()?
                        .parse()
                        .map_err(|_| ParseError("--scale needs an integer".into()))?,
                )
            }
            "--policy" => spec.policy = parse_policy(value()?)?,
            "--preprocess" => {
                spec.preprocess = match value()?.as_str() {
                    "none" => Preprocessing::None,
                    "dbg" => Preprocessing::Dbg,
                    "sort" => Preprocessing::DegreeSort,
                    "random" => Preprocessing::Random,
                    other => return err(format!("unknown preprocessing '{other}'")),
                }
            }
            "--order" => {
                spec.order = match value()?.as_str() {
                    "natural" => AllocOrder::Natural,
                    "property-first" | "optimized" => AllocOrder::PropertyFirst,
                    other => return err(format!("unknown order '{other}'")),
                }
            }
            "--surplus" => {
                let v = value()?;
                surplus = if v == "unbounded" {
                    Some(Surplus::Unbounded)
                } else {
                    let f: f64 = v.parse().map_err(|_| {
                        ParseError("--surplus needs 'unbounded' or a fraction".into())
                    })?;
                    Some(Surplus::FractionOfWss(f))
                };
            }
            "--frag" => {
                frag = value()?
                    .parse()
                    .map_err(|_| ParseError("--frag needs a fraction".into()))?;
                if !(0.0..=1.0).contains(&frag) {
                    return err("--frag must be within 0..=1");
                }
            }
            "--file" => {
                spec.file = match value()?.as_str() {
                    "tmpfs" => FilePlacement::TmpfsRemote,
                    "cache" => FilePlacement::LocalPageCache,
                    "direct" => FilePlacement::DirectIo,
                    other => return err(format!("unknown file placement '{other}'")),
                }
            }
            "--no-verify" => spec.verify = false,
            "--telemetry" => spec.telemetry = Some(value()?.clone()),
            "--sample-interval" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|_| ParseError("--sample-interval needs an integer".into()))?;
                if n == 0 {
                    return err("--sample-interval must be positive");
                }
                spec.sample_interval = Some(n);
            }
            "--series" => spec.series = Some(value()?.clone()),
            "--threads" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|_| ParseError("--threads needs an integer".into()))?;
                if n == 0 {
                    return err("--threads must be positive");
                }
                spec.threads = Some(n);
            }
            "--json" => spec.json = true,
            "--manifest" => spec.manifest = Some(value()?.clone()),
            "--resume" => spec.resume = Some(value()?.clone()),
            "--retries" => {
                spec.retries = value()?
                    .parse()
                    .map_err(|_| ParseError("--retries needs an integer".into()))?;
            }
            "--timeout" => {
                let secs: f64 = value()?
                    .parse()
                    .map_err(|_| ParseError("--timeout needs seconds (e.g. 0.5 or 120)".into()))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return err("--timeout must be a positive number of seconds");
                }
                spec.timeout_secs = Some(secs);
            }
            "--chaos" => spec.chaos = parse_chaos(value()?)?,
            other => return err(format!("unknown option '{other}'")),
        }
    }
    spec.condition = build_condition(surplus, frag)?;
    Ok(spec)
}

fn build_condition(surplus: Option<Surplus>, frag: f64) -> Result<MemoryCondition, ParseError> {
    Ok(match (surplus, frag) {
        (None | Some(Surplus::Unbounded), 0.0) => MemoryCondition::unbounded(),
        (None | Some(Surplus::Unbounded), f) => MemoryCondition::fragmented(f),
        (Some(s), 0.0) => MemoryCondition::pressured(s),
        (Some(s), f) => MemoryCondition {
            surplus: s,
            fragmentation: f,
            noise_occupancy: 0.5,
        },
    })
}

/// Parse a fault-injection spec: a comma list of `<kind>@<index>` where
/// kind is `panic`, `io`, or `delay:<ms>` (e.g. `panic@2,io@5`).
fn parse_chaos(v: &str) -> Result<Vec<(usize, FaultSpec)>, ParseError> {
    let mut plan = Vec::new();
    for part in v.split(',') {
        let Some((kind, index)) = part.split_once('@') else {
            return err(format!(
                "--chaos entry '{part}' must be <kind>@<index> (panic|io|delay:<ms>)"
            ));
        };
        let index: usize = index
            .parse()
            .map_err(|_| ParseError(format!("--chaos entry '{part}': bad index '{index}'")))?;
        let fault = if let Some(ms) = kind.strip_prefix("delay:") {
            let ms: u64 = ms.parse().map_err(|_| {
                ParseError(format!(
                    "--chaos entry '{part}': bad delay '{ms}' (milliseconds)"
                ))
            })?;
            FaultSpec::Delay { ms }
        } else {
            match kind {
                "panic" => FaultSpec::Panic,
                "io" => FaultSpec::IoError,
                other => {
                    return err(format!(
                        "--chaos entry '{part}': unknown fault '{other}' (panic|io|delay:<ms>)"
                    ))
                }
            }
        };
        plan.push((index, fault));
    }
    Ok(plan)
}

fn parse_policy(v: &str) -> Result<PagePolicy, ParseError> {
    if let Some(rest) = v.strip_prefix("selective:") {
        let fraction: f64 = rest
            .parse()
            .map_err(|_| ParseError("selective:<fraction> needs a number".into()))?;
        if !(0.0..=1.0).contains(&fraction) {
            return err("selective fraction must be within 0..=1");
        }
        return Ok(PagePolicy::SelectiveProperty { fraction });
    }
    if let Some(rest) = v.strip_prefix("auto:") {
        let coverage: f64 = rest
            .parse()
            .map_err(|_| ParseError("auto:<coverage> needs a number".into()))?;
        if !(0.0..=1.0).contains(&coverage) {
            return err("auto coverage must be within 0..=1");
        }
        return Ok(PagePolicy::AutoSelective { coverage });
    }
    match v {
        "4k" | "4kb" | "base" => Ok(PagePolicy::BaseOnly),
        "thp" => Ok(PagePolicy::ThpSystemWide),
        "property" => Ok(PagePolicy::property_only()),
        "hugetlb" => Ok(PagePolicy::HugetlbProperty),
        other => err(format!("unknown policy '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn bare_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("datasets")).unwrap(), Command::Datasets);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(spec) = parse(&args("run")).unwrap() else {
            panic!()
        };
        assert_eq!(spec, RunSpec::default());
    }

    #[test]
    fn run_full_options() {
        let cmd = parse(&args(
            "run --dataset twit --kernel sssp --scale 14 --policy selective:0.25 \
             --preprocess dbg --order property-first --surplus 0.12 --frag 0.5 --file cache --no-verify",
        ))
        .unwrap();
        let Command::Run(s) = cmd else { panic!() };
        assert_eq!(s.dataset, Dataset::Twitter);
        assert_eq!(s.kernel, Kernel::Sssp);
        assert_eq!(s.scale, Some(14));
        assert_eq!(s.policy, PagePolicy::SelectiveProperty { fraction: 0.25 });
        assert_eq!(s.preprocess, Preprocessing::Dbg);
        assert_eq!(s.order, AllocOrder::PropertyFirst);
        assert_eq!(s.condition.fragmentation, 0.5);
        assert_eq!(s.file, FilePlacement::LocalPageCache);
        assert!(!s.verify);
    }

    #[test]
    fn policy_variants() {
        assert_eq!(parse_policy("4k").unwrap(), PagePolicy::BaseOnly);
        assert_eq!(parse_policy("thp").unwrap(), PagePolicy::ThpSystemWide);
        assert_eq!(
            parse_policy("property").unwrap(),
            PagePolicy::property_only()
        );
        assert_eq!(
            parse_policy("auto:0.8").unwrap(),
            PagePolicy::AutoSelective { coverage: 0.8 }
        );
        assert_eq!(
            parse_policy("hugetlb").unwrap(),
            PagePolicy::HugetlbProperty
        );
        assert!(parse_policy("selective:1.5").is_err());
        assert!(parse_policy("bogus").is_err());
    }

    #[test]
    fn telemetry_flags() {
        let Command::Run(s) = parse(&args(
            "run --telemetry /tmp/t.jsonl --sample-interval 100000 --series /tmp/s.csv --json",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.telemetry.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(s.sample_interval, Some(100_000));
        assert_eq!(s.series.as_deref(), Some("/tmp/s.csv"));
        assert!(s.json);
        assert!(parse(&args("run --sample-interval 0")).is_err());
        assert!(parse(&args("run --sample-interval many")).is_err());
        assert!(parse(&args("run --telemetry")).is_err());
    }

    #[test]
    fn sweep_kinds() {
        for (word, kind) in [
            ("pressure", SweepKind::Pressure),
            ("frag", SweepKind::Fragmentation),
            ("selectivity", SweepKind::Selectivity),
        ] {
            let Command::Sweep(k, _) = parse(&args(&format!("sweep {word}"))).unwrap() else {
                panic!()
            };
            assert_eq!(k, kind);
        }
        assert!(parse(&args("sweep sideways")).is_err());
    }

    #[test]
    fn error_messages_are_helpful() {
        let e = parse(&args("run --dataset mars")).unwrap_err();
        assert!(e.to_string().contains("mars"));
        let e = parse(&args("run --scale")).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
        let e = parse(&args("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn robustness_flags() {
        let Command::Sweep(_, s) = parse(&args(
            "sweep pressure --manifest runs.jsonl --resume runs.jsonl --retries 3 \
             --timeout 1.5 --chaos panic@2,io@5,delay:250@0",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.manifest.as_deref(), Some("runs.jsonl"));
        assert_eq!(s.resume.as_deref(), Some("runs.jsonl"));
        assert_eq!(s.retries, 3);
        assert_eq!(s.timeout_secs, Some(1.5));
        assert_eq!(
            s.chaos,
            vec![
                (2, FaultSpec::Panic),
                (5, FaultSpec::IoError),
                (0, FaultSpec::Delay { ms: 250 }),
            ]
        );
    }

    #[test]
    fn robustness_flag_errors_name_the_flag() {
        let e = parse(&args("sweep pressure --timeout -1")).unwrap_err();
        assert!(e.to_string().contains("--timeout"), "{e}");
        let e = parse(&args("sweep pressure --retries lots")).unwrap_err();
        assert!(e.to_string().contains("--retries"), "{e}");
        let e = parse(&args("sweep pressure --chaos explode@1")).unwrap_err();
        assert!(e.to_string().contains("explode"), "{e}");
        let e = parse(&args("sweep pressure --chaos panic")).unwrap_err();
        assert!(e.to_string().contains("<kind>@<index>"), "{e}");
        let e = parse(&args("sweep pressure --chaos delay:soon@1")).unwrap_err();
        assert!(e.to_string().contains("bad delay"), "{e}");
    }

    #[test]
    fn condition_composition() {
        let Command::Run(s) = parse(&args("run --surplus 0.06")).unwrap() else {
            panic!()
        };
        assert_eq!(
            s.condition,
            MemoryCondition::pressured(Surplus::FractionOfWss(0.06))
        );
        let Command::Run(s) = parse(&args("run --frag 0.25")).unwrap() else {
            panic!()
        };
        assert_eq!(s.condition, MemoryCondition::fragmented(0.25));
    }
}
