//! Argument parsing for the `graphmem` binary.
//!
//! Flags lower into the typed [`RunSpec`] from `graphmem-core` through
//! the shared token grammar in [`graphmem_core::spec`] — the same
//! grammar the experiment service's JSON API uses — so a config typed at
//! a shell and the same config POSTed to `graphmem serve` produce the
//! identical experiment and config hash.

use graphmem_core::spec::{
    dataset_from_token, file_from_token, kernel_from_token, order_from_token, policy_from_token,
    preprocess_from_token, surplus_from_token,
};
use graphmem_core::{
    AccessEngine, FaultSpec, FsyncPolicy, IoFaultKind, MemoryCondition, RunSpec, Surplus, SweepKind,
};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `graphmem run`
    Run(RunArgs),
    /// `graphmem sweep <kind>`
    Sweep(SweepKind, RunArgs),
    /// `graphmem serve`
    Serve(ServeArgs),
    /// `graphmem submit`
    Submit(SubmitArgs),
    /// `graphmem datasets`
    Datasets,
    /// `graphmem help`
    Help,
}

/// A `run` / `sweep` invocation: the experiment description plus local
/// execution options.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// What to run (the shared typed spec).
    pub spec: RunSpec,
    /// How to run it here (telemetry, threads, manifests, chaos).
    pub exec: ExecArgs,
}

/// Local execution options that are *not* part of a config's identity —
/// they never reach the config hash.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecArgs {
    /// Stream telemetry events to this JSONL file.
    pub telemetry: Option<String>,
    /// Write the sampled metrics series to this CSV file.
    pub series: Option<String>,
    /// Enable the translation-attribution profiler (per-array TLB/walk
    /// accounting plus fragmentation/coverage series).
    pub attribution: bool,
    /// Override the simulated access engine (`legacy` forces the
    /// element-at-a-time oracle; default is the batched fast path). Both
    /// engines produce bit-identical reports, so this is a local
    /// execution choice, not part of the config's identity.
    pub engine: Option<AccessEngine>,
    /// Print the report as one JSON object instead of prose.
    pub json: bool,
    /// Worker threads for `sweep` (defaults to the machine's parallelism).
    pub threads: Option<usize>,
    /// Append completed sweep reports to this JSONL run-manifest.
    pub manifest: Option<String>,
    /// Skip sweep configs already completed in this manifest.
    pub resume: Option<String>,
    /// Retries per experiment for transient failures.
    pub retries: u32,
    /// Per-experiment wall-clock watchdog, in seconds.
    pub timeout_secs: Option<f64>,
    /// Deterministic fault injections, as `(grid index, fault)` pairs.
    pub chaos: Vec<(usize, FaultSpec)>,
    /// Deterministic *IO* fault injections against the manifest writer,
    /// as `(record index, fault)` pairs (`eio`, `enospc`, `io-torn`).
    pub io_chaos: Vec<(u64, IoFaultKind)>,
    /// Fsync cadence for the run manifest (`None` keeps the supervisor's
    /// default, which is `always`).
    pub fsync: Option<FsyncPolicy>,
}

/// A `graphmem serve` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Bind address.
    pub addr: String,
    /// Worker threads executing experiments.
    pub workers: usize,
    /// Max queued configs before `POST /runs` answers 429.
    pub queue: usize,
    /// Durable result-store directory (in-memory only when absent).
    pub cache_dir: Option<String>,
    /// Supervisor retries per config.
    pub retries: u32,
    /// Per-config watchdog, in seconds (scaled to millis precision).
    pub timeout_ms: Option<u64>,
    /// Fsync cadence for result-store shards (`None` = server default,
    /// which is `always`).
    pub fsync: Option<FsyncPolicy>,
    /// Deterministic compute-fault injections against the Nth *executed*
    /// (non-cached) config, for degraded-mode and breaker testing.
    pub chaos: Vec<(usize, FaultSpec)>,
    /// Deterministic IO-fault injections against the Nth store append.
    pub io_chaos: Vec<(u64, IoFaultKind)>,
    /// Circuit-breaker trip threshold (`None` = server default; `0`
    /// disables breaking entirely).
    pub breaker: Option<u32>,
    /// Circuit-breaker half-open cooldown, in milliseconds.
    pub breaker_cooldown_ms: Option<u64>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: DEFAULT_ADDR.to_string(),
            workers: 2,
            queue: 64,
            cache_dir: None,
            retries: 1,
            timeout_ms: None,
            fsync: None,
            chaos: Vec::new(),
            io_chaos: Vec::new(),
            breaker: None,
            breaker_cooldown_ms: None,
        }
    }
}

/// A `graphmem submit` invocation: ship a spec to a running server.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Server address.
    pub addr: String,
    /// Expand the spec into this sweep grid server-side.
    pub sweep: Option<SweepKind>,
    /// The experiment description to submit.
    pub spec: RunSpec,
    /// Echo the raw progress JSONL instead of prose.
    pub json: bool,
}

impl Default for SubmitArgs {
    fn default() -> Self {
        SubmitArgs {
            addr: DEFAULT_ADDR.to_string(),
            sweep: None,
            spec: RunSpec::default(),
            json: false,
        }
    }
}

/// Default experiment-service address for `serve` and `submit`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parse a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`ParseError`] with a message suitable for direct display.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("datasets") => Ok(Command::Datasets),
        Some("run") => Ok(Command::Run(parse_run_args(it.as_slice())?)),
        Some("sweep") => {
            let kind = match it.next() {
                Some(word) => SweepKind::from_token(word).map_err(ParseError)?,
                None => return err("sweep needs one of pressure|frag|selectivity"),
            };
            Ok(Command::Sweep(kind, parse_run_args(it.as_slice())?))
        }
        Some("serve") => Ok(Command::Serve(parse_serve_args(it.as_slice())?)),
        Some("submit") => Ok(Command::Submit(parse_submit_args(it.as_slice())?)),
        Some(other) => err(format!("unknown command '{other}' (try 'graphmem help')")),
    }
}

type ArgIter<'a> = std::slice::Iter<'a, String>;

fn next_value<'a>(it: &mut ArgIter<'a>, flag: &str) -> Result<&'a str, ParseError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

/// Pressure/fragmentation knobs collected across flags, composed into a
/// [`MemoryCondition`] once the whole line is parsed.
#[derive(Default)]
struct ConditionKnobs {
    surplus: Option<Surplus>,
    frag: f64,
}

/// Apply one experiment-description flag to `spec`, returning `false`
/// when the flag is not a spec flag (so the caller can try its own).
fn spec_flag(
    spec: &mut RunSpec,
    knobs: &mut ConditionKnobs,
    flag: &str,
    it: &mut ArgIter<'_>,
) -> Result<bool, ParseError> {
    match flag {
        "--dataset" => {
            spec.dataset = dataset_from_token(next_value(it, flag)?).map_err(ParseError)?;
        }
        "--kernel" => {
            spec.kernel = kernel_from_token(next_value(it, flag)?).map_err(ParseError)?;
        }
        "--scale" => {
            spec.scale = Some(
                next_value(it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--scale needs an integer".into()))?,
            );
        }
        "--policy" => {
            spec.plan.policy = policy_from_token(next_value(it, flag)?).map_err(ParseError)?;
        }
        "--governor" => {
            spec.plan.governor = Some(
                next_value(it, flag)?
                    .parse()
                    .map_err(|e| ParseError(format!("--governor: {e}")))?,
            );
        }
        "--khugepaged" => {
            spec.plan.khugepaged_enabled = Some(match next_value(it, flag)? {
                "on" => true,
                "off" => false,
                other => return err(format!("--khugepaged must be on|off, got '{other}'")),
            });
        }
        "--khugepaged-interval" => {
            spec.plan.khugepaged_interval = Some(
                next_value(it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--khugepaged-interval needs an integer".into()))?,
            );
        }
        "--defrag-blocks" => {
            spec.plan.defrag_scan_blocks = Some(
                next_value(it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--defrag-blocks needs an integer".into()))?,
            );
        }
        "--preprocess" => {
            spec.preprocess = preprocess_from_token(next_value(it, flag)?).map_err(ParseError)?;
        }
        "--order" => {
            spec.order = order_from_token(next_value(it, flag)?).map_err(ParseError)?;
        }
        "--surplus" => {
            knobs.surplus = Some(surplus_from_token(next_value(it, flag)?).map_err(ParseError)?);
        }
        "--frag" => {
            let frag: f64 = next_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--frag needs a fraction".into()))?;
            if !(0.0..=1.0).contains(&frag) {
                return err("--frag must be within 0..=1");
            }
            knobs.frag = frag;
        }
        "--file" => {
            spec.file = file_from_token(next_value(it, flag)?).map_err(ParseError)?;
        }
        "--no-verify" => spec.verify = false,
        "--sample-interval" => {
            let n: u64 = next_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--sample-interval needs an integer".into()))?;
            if n == 0 {
                return err("--sample-interval must be positive");
            }
            spec.sample_interval = Some(n);
        }
        "--seed-offset" => {
            spec.seed_offset = next_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--seed-offset needs an integer".into()))?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Apply one local-execution flag to `exec`, returning `false` when the
/// flag is not an exec flag.
fn exec_flag(exec: &mut ExecArgs, flag: &str, it: &mut ArgIter<'_>) -> Result<bool, ParseError> {
    match flag {
        "--telemetry" => exec.telemetry = Some(next_value(it, flag)?.to_string()),
        "--series" => exec.series = Some(next_value(it, flag)?.to_string()),
        "--attribution" => exec.attribution = true,
        "--engine" => {
            exec.engine = Some(match next_value(it, flag)? {
                "batched" => AccessEngine::Batched,
                "legacy" => AccessEngine::Legacy,
                other => {
                    return err(format!(
                        "--engine must be 'batched' or 'legacy', got '{other}'"
                    ))
                }
            });
        }
        "--json" => exec.json = true,
        "--threads" => {
            let n: usize = next_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--threads needs an integer".into()))?;
            if n == 0 {
                return err("--threads must be positive");
            }
            exec.threads = Some(n);
        }
        "--manifest" => exec.manifest = Some(next_value(it, flag)?.to_string()),
        "--resume" => exec.resume = Some(next_value(it, flag)?.to_string()),
        "--retries" => {
            exec.retries = next_value(it, flag)?
                .parse()
                .map_err(|_| ParseError("--retries needs an integer".into()))?;
        }
        "--timeout" => exec.timeout_secs = Some(parse_timeout(next_value(it, flag)?)?),
        "--chaos" => {
            let plan = parse_chaos(next_value(it, flag)?)?;
            exec.chaos = plan.compute;
            exec.io_chaos = plan.io;
        }
        "--fsync" => exec.fsync = Some(parse_fsync(next_value(it, flag)?)?),
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_fsync(v: &str) -> Result<FsyncPolicy, ParseError> {
    FsyncPolicy::from_token(v).map_err(|e| ParseError(format!("--fsync: {e}")))
}

fn parse_timeout(v: &str) -> Result<f64, ParseError> {
    let secs: f64 = v
        .parse()
        .map_err(|_| ParseError("--timeout needs seconds (e.g. 0.5 or 120)".into()))?;
    if !secs.is_finite() || secs <= 0.0 {
        return err("--timeout must be a positive number of seconds");
    }
    Ok(secs)
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, ParseError> {
    let mut spec = RunSpec::default();
    let mut exec = ExecArgs::default();
    let mut knobs = ConditionKnobs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if spec_flag(&mut spec, &mut knobs, flag, &mut it)? {
            continue;
        }
        if exec_flag(&mut exec, flag, &mut it)? {
            continue;
        }
        return err(format!("unknown option '{flag}'"));
    }
    spec.condition = MemoryCondition::from_knobs(knobs.surplus, knobs.frag);
    Ok(RunArgs { spec, exec })
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, ParseError> {
    let mut serve = ServeArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => serve.addr = next_value(&mut it, flag)?.to_string(),
            "--workers" => {
                let n: usize = next_value(&mut it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--workers needs an integer".into()))?;
                if n == 0 {
                    return err("--workers must be positive");
                }
                serve.workers = n;
            }
            "--queue" => {
                let n: usize = next_value(&mut it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--queue needs an integer".into()))?;
                if n == 0 {
                    return err("--queue must be positive");
                }
                serve.queue = n;
            }
            "--cache-dir" => serve.cache_dir = Some(next_value(&mut it, flag)?.to_string()),
            "--retries" => {
                serve.retries = next_value(&mut it, flag)?
                    .parse()
                    .map_err(|_| ParseError("--retries needs an integer".into()))?;
            }
            "--timeout" => {
                let secs = parse_timeout(next_value(&mut it, flag)?)?;
                serve.timeout_ms = Some((secs * 1000.0) as u64);
            }
            "--fsync" => serve.fsync = Some(parse_fsync(next_value(&mut it, flag)?)?),
            "--chaos" => {
                let plan = parse_chaos(next_value(&mut it, flag)?)?;
                serve.chaos = plan.compute;
                serve.io_chaos = plan.io;
            }
            "--breaker" => {
                serve.breaker = Some(
                    next_value(&mut it, flag)?
                        .parse()
                        .map_err(|_| ParseError("--breaker needs an integer threshold".into()))?,
                );
            }
            "--breaker-cooldown" => {
                let secs = parse_timeout(next_value(&mut it, flag)?)
                    .map_err(|e| ParseError(e.0.replace("--timeout", "--breaker-cooldown")))?;
                serve.breaker_cooldown_ms = Some((secs * 1000.0) as u64);
            }
            other => return err(format!("unknown option '{other}'")),
        }
    }
    Ok(serve)
}

fn parse_submit_args(args: &[String]) -> Result<SubmitArgs, ParseError> {
    let mut submit = SubmitArgs::default();
    let mut knobs = ConditionKnobs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if spec_flag(&mut submit.spec, &mut knobs, flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--addr" => submit.addr = next_value(&mut it, flag)?.to_string(),
            "--sweep" => {
                submit.sweep =
                    Some(SweepKind::from_token(next_value(&mut it, flag)?).map_err(ParseError)?);
            }
            "--json" => submit.json = true,
            other => return err(format!("unknown option '{other}'")),
        }
    }
    submit.spec.condition = MemoryCondition::from_knobs(knobs.surplus, knobs.frag);
    Ok(submit)
}

/// A parsed `--chaos` list, split by which layer each fault targets:
/// compute faults fire inside the experiment at a grid index, IO faults
/// fire inside the durable writer at a record index.
#[derive(Debug, Default, PartialEq, Eq)]
struct ChaosPlan {
    compute: Vec<(usize, FaultSpec)>,
    io: Vec<(u64, IoFaultKind)>,
}

/// Parse a fault-injection spec: a comma list of `<kind>@<index>` where
/// kind is a compute fault (`panic`, `io`, `delay:<ms>`, keyed by grid
/// index) or an IO fault (`eio`, `enospc`, `io-torn`, keyed by durable
/// record index) — e.g. `panic@2,io@5,enospc@3`. The two token
/// grammars are owned by [`FaultSpec::from_token`] and
/// [`IoFaultKind::from_token`] in `graphmem-core`; this function only
/// splits the list and routes each entry to the right layer.
fn parse_chaos(v: &str) -> Result<ChaosPlan, ParseError> {
    const KINDS: &str = "panic|io|delay:<ms>|eio|enospc|io-torn";
    let mut plan = ChaosPlan::default();
    for part in v.split(',') {
        let Some((kind, index)) = part.split_once('@') else {
            return err(format!(
                "--chaos entry '{part}' must be <kind>@<index> ({KINDS})"
            ));
        };
        let index: u64 = index
            .parse()
            .map_err(|_| ParseError(format!("--chaos entry '{part}': bad index '{index}'")))?;
        match FaultSpec::from_token(kind) {
            Ok(fault) => plan.compute.push((index as usize, fault)),
            // `delay:` entries are unambiguously compute faults, so a
            // malformed delay reports the compute-side error instead of
            // falling through to "unknown fault".
            Err(e) if kind.starts_with("delay:") => {
                return err(format!("--chaos entry '{part}': {e}"));
            }
            Err(_) => match IoFaultKind::from_token(kind) {
                Ok(io) => plan.io.push((index, io)),
                Err(_) => {
                    return err(format!(
                        "--chaos entry '{part}': unknown fault '{kind}' ({KINDS})"
                    ));
                }
            },
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmem_core::prelude::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn bare_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("datasets")).unwrap(), Command::Datasets);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(run) = parse(&args("run")).unwrap() else {
            panic!()
        };
        assert_eq!(run.spec, RunSpec::default());
        assert_eq!(run.exec, ExecArgs::default());
    }

    #[test]
    fn run_full_options() {
        let cmd = parse(&args(
            "run --dataset twit --kernel sssp --scale 14 --policy selective:0.25 \
             --preprocess dbg --order property-first --surplus 0.12 --frag 0.5 --file cache \
             --no-verify --seed-offset 3",
        ))
        .unwrap();
        let Command::Run(r) = cmd else { panic!() };
        assert_eq!(r.spec.dataset, Dataset::Twitter);
        assert_eq!(r.spec.kernel, Kernel::Sssp);
        assert_eq!(r.spec.scale, Some(14));
        assert_eq!(
            r.spec.plan.policy,
            PagePolicy::SelectiveProperty { fraction: 0.25 }
        );
        assert_eq!(r.spec.preprocess, Preprocessing::Dbg);
        assert_eq!(r.spec.order, AllocOrder::PropertyFirst);
        assert_eq!(r.spec.condition.fragmentation, 0.5);
        assert_eq!(r.spec.file, FilePlacement::LocalPageCache);
        assert_eq!(r.spec.seed_offset, 3);
        assert!(!r.spec.verify);
    }

    #[test]
    fn flags_and_json_produce_the_same_spec() {
        // The tentpole invariant: both frontends share one lowering path,
        // so the flag form and the wire form agree on the config hash.
        let Command::Run(run) = parse(&args(
            "run --dataset wiki --kernel pr --scale 12 --policy auto:0.8 --surplus 0.25",
        ))
        .unwrap() else {
            panic!()
        };
        let wire = RunSpec::from_json(&run.spec.to_json()).unwrap();
        assert_eq!(run.spec, wire);
        assert_eq!(run.spec.config_hash().unwrap(), wire.config_hash().unwrap());
    }

    #[test]
    fn policy_variants() {
        use graphmem_core::spec::policy_from_token;
        assert_eq!(policy_from_token("4k").unwrap(), PagePolicy::BaseOnly);
        assert_eq!(policy_from_token("thp").unwrap(), PagePolicy::ThpSystemWide);
        assert_eq!(
            policy_from_token("property").unwrap(),
            PagePolicy::property_only()
        );
        assert_eq!(
            policy_from_token("auto:0.8").unwrap(),
            PagePolicy::AutoSelective { coverage: 0.8 }
        );
        assert_eq!(
            policy_from_token("hugetlb").unwrap(),
            PagePolicy::HugetlbProperty
        );
        assert!(policy_from_token("selective:1.5").is_err());
        assert!(policy_from_token("bogus").is_err());
    }

    #[test]
    fn plan_flags() {
        let Command::Run(r) = parse(&args(
            "run --policy thp --governor epoch=500000,promote=1.5 --khugepaged off \
             --khugepaged-interval 250000 --defrag-blocks 4",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(r.spec.plan.policy, PagePolicy::ThpSystemWide);
        let gov = r.spec.plan.governor.expect("governor set");
        assert_eq!(gov.epoch_cycles, 500_000);
        assert_eq!(gov.promote_cost, 1.5);
        assert_eq!(r.spec.plan.khugepaged_enabled, Some(false));
        assert_eq!(r.spec.plan.khugepaged_interval, Some(250_000));
        assert_eq!(r.spec.plan.defrag_scan_blocks, Some(4));
        // The governor token round-trips through the spec's JSON form.
        let wire = RunSpec::from_json(&r.spec.to_json()).unwrap();
        assert_eq!(wire, r.spec);
        let e = parse(&args("run --governor epoch=nope")).unwrap_err();
        assert!(e.to_string().contains("--governor"), "{e}");
        let e = parse(&args("run --khugepaged maybe")).unwrap_err();
        assert!(e.to_string().contains("--khugepaged"), "{e}");
    }

    #[test]
    fn telemetry_flags() {
        let Command::Run(r) = parse(&args(
            "run --telemetry /tmp/t.jsonl --sample-interval 100000 --series /tmp/s.csv --json",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(r.exec.telemetry.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(r.spec.sample_interval, Some(100_000));
        assert_eq!(r.exec.series.as_deref(), Some("/tmp/s.csv"));
        assert!(r.exec.json);
        assert!(!r.exec.attribution);
        let Command::Run(r) = parse(&args("run --attribution")).unwrap() else {
            panic!()
        };
        assert!(r.exec.attribution);
        assert!(parse(&args("run --sample-interval 0")).is_err());
        assert!(parse(&args("run --sample-interval many")).is_err());
        assert!(parse(&args("run --telemetry")).is_err());
    }

    #[test]
    fn engine_flag() {
        let Command::Run(r) = parse(&args("run")).unwrap() else {
            panic!()
        };
        assert_eq!(r.exec.engine, None, "engine defaults to the spec's choice");
        let Command::Run(r) = parse(&args("run --engine legacy")).unwrap() else {
            panic!()
        };
        assert_eq!(r.exec.engine, Some(AccessEngine::Legacy));
        let Command::Run(r) = parse(&args("run --engine batched")).unwrap() else {
            panic!()
        };
        assert_eq!(r.exec.engine, Some(AccessEngine::Batched));
        let msg = parse(&args("run --engine turbo")).unwrap_err().0;
        assert!(
            msg.contains("batched"),
            "error names the valid values: {msg}"
        );
        assert!(parse(&args("run --engine")).is_err());
    }

    #[test]
    fn sweep_kinds() {
        for (word, kind) in [
            ("pressure", SweepKind::Pressure),
            ("frag", SweepKind::Fragmentation),
            ("selectivity", SweepKind::Selectivity),
        ] {
            let Command::Sweep(k, _) = parse(&args(&format!("sweep {word}"))).unwrap() else {
                panic!()
            };
            assert_eq!(k, kind);
        }
        assert!(parse(&args("sweep sideways")).is_err());
    }

    #[test]
    fn error_messages_are_helpful() {
        let e = parse(&args("run --dataset mars")).unwrap_err();
        assert!(e.to_string().contains("mars"));
        let e = parse(&args("run --scale")).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
        let e = parse(&args("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn robustness_flags() {
        let Command::Sweep(_, r) = parse(&args(
            "sweep pressure --manifest runs.jsonl --resume runs.jsonl --retries 3 \
             --timeout 1.5 --chaos panic@2,io@5,delay:250@0",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(r.exec.manifest.as_deref(), Some("runs.jsonl"));
        assert_eq!(r.exec.resume.as_deref(), Some("runs.jsonl"));
        assert_eq!(r.exec.retries, 3);
        assert_eq!(r.exec.timeout_secs, Some(1.5));
        assert_eq!(
            r.exec.chaos,
            vec![
                (2, FaultSpec::Panic),
                (5, FaultSpec::IoError),
                (0, FaultSpec::Delay { ms: 250 }),
            ]
        );
        assert!(r.exec.io_chaos.is_empty());
        assert_eq!(r.exec.fsync, None, "fsync defaults to the supervisor's");
    }

    #[test]
    fn durability_flags() {
        // One --chaos list mixes compute and IO faults; they split by
        // target layer.
        let Command::Sweep(_, r) = parse(&args(
            "sweep pressure --fsync every:8 --chaos panic@1,io-torn@3,enospc@0,eio@7",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(r.exec.fsync, Some(FsyncPolicy::EveryN(8)));
        assert_eq!(r.exec.chaos, vec![(1, FaultSpec::Panic)]);
        assert_eq!(
            r.exec.io_chaos,
            vec![
                (3, IoFaultKind::Torn),
                (0, IoFaultKind::Enospc),
                (7, IoFaultKind::Eio),
            ]
        );
        let Command::Sweep(_, r) = parse(&args("sweep pressure --fsync never")).unwrap() else {
            panic!()
        };
        assert_eq!(r.exec.fsync, Some(FsyncPolicy::Never));
        let e = parse(&args("sweep pressure --fsync sometimes")).unwrap_err();
        assert!(e.to_string().contains("--fsync"), "{e}");
        let e = parse(&args("sweep pressure --fsync every:0")).unwrap_err();
        assert!(e.to_string().contains("--fsync"), "{e}");
    }

    #[test]
    fn robustness_flag_errors_name_the_flag() {
        let e = parse(&args("sweep pressure --timeout -1")).unwrap_err();
        assert!(e.to_string().contains("--timeout"), "{e}");
        let e = parse(&args("sweep pressure --retries lots")).unwrap_err();
        assert!(e.to_string().contains("--retries"), "{e}");
        let e = parse(&args("sweep pressure --chaos explode@1")).unwrap_err();
        assert!(e.to_string().contains("explode"), "{e}");
        let e = parse(&args("sweep pressure --chaos panic")).unwrap_err();
        assert!(e.to_string().contains("<kind>@<index>"), "{e}");
        let e = parse(&args("sweep pressure --chaos delay:soon@1")).unwrap_err();
        assert!(e.to_string().contains("bad delay"), "{e}");
    }

    #[test]
    fn condition_composition() {
        let Command::Run(r) = parse(&args("run --surplus 0.06")).unwrap() else {
            panic!()
        };
        assert_eq!(
            r.spec.condition,
            MemoryCondition::pressured(Surplus::FractionOfWss(0.06))
        );
        let Command::Run(r) = parse(&args("run --frag 0.25")).unwrap() else {
            panic!()
        };
        assert_eq!(r.spec.condition, MemoryCondition::fragmented(0.25));
    }

    #[test]
    fn serve_flags() {
        let Command::Serve(s) = parse(&args("serve")).unwrap() else {
            panic!()
        };
        assert_eq!(s, ServeArgs::default());
        let Command::Serve(s) = parse(&args(
            "serve --addr 127.0.0.1:0 --workers 4 --queue 128 --cache-dir /tmp/cache \
             --retries 2 --timeout 0.5",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.addr, "127.0.0.1:0");
        assert_eq!(s.workers, 4);
        assert_eq!(s.queue, 128);
        assert_eq!(s.cache_dir.as_deref(), Some("/tmp/cache"));
        assert_eq!(s.retries, 2);
        assert_eq!(s.timeout_ms, Some(500));
        assert!(parse(&args("serve --workers 0")).is_err());
        assert!(parse(&args("serve --dataset wiki")).is_err());
    }

    #[test]
    fn serve_durability_flags() {
        let Command::Serve(s) = parse(&args(
            "serve --fsync every:4 --chaos enospc@2,panic@0 --breaker 3 --breaker-cooldown 0.25",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.fsync, Some(FsyncPolicy::EveryN(4)));
        assert_eq!(s.chaos, vec![(0, FaultSpec::Panic)]);
        assert_eq!(s.io_chaos, vec![(2, IoFaultKind::Enospc)]);
        assert_eq!(s.breaker, Some(3));
        assert_eq!(s.breaker_cooldown_ms, Some(250));
        // `--breaker 0` is valid: it disables circuit breaking.
        let Command::Serve(s) = parse(&args("serve --breaker 0")).unwrap() else {
            panic!()
        };
        assert_eq!(s.breaker, Some(0));
        let e = parse(&args("serve --breaker lots")).unwrap_err();
        assert!(e.to_string().contains("--breaker"), "{e}");
        let e = parse(&args("serve --breaker-cooldown -2")).unwrap_err();
        assert!(e.to_string().contains("--breaker-cooldown"), "{e}");
        let e = parse(&args("serve --fsync every:")).unwrap_err();
        assert!(e.to_string().contains("--fsync"), "{e}");
    }

    #[test]
    fn submit_flags() {
        let Command::Submit(s) = parse(&args(
            "submit --addr 127.0.0.1:9999 --sweep frag --dataset wiki --scale 11 --json",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.addr, "127.0.0.1:9999");
        assert_eq!(s.sweep, Some(SweepKind::Fragmentation));
        assert_eq!(s.spec.dataset, Dataset::Wiki);
        assert_eq!(s.spec.scale, Some(11));
        assert!(s.json);
        // Exec-only flags make no sense remotely.
        assert!(parse(&args("submit --threads 4")).is_err());
        assert!(parse(&args("submit --manifest runs.jsonl")).is_err());
    }
}
