//! The `graphmem` binary: see [`graphmem_cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match graphmem_cli::parse(&args) {
        Ok(cmd) => {
            graphmem_cli::execute(cmd);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", graphmem_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
