//! The `graphmem` binary: see [`graphmem_cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match graphmem_cli::parse(&args) {
        Ok(cmd) => ExitCode::from(graphmem_cli::execute(cmd)),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", graphmem_cli::USAGE);
            ExitCode::from(graphmem_cli::EXIT_USAGE)
        }
    }
}
