//! Command execution: lower parsed specs through `graphmem-core` and
//! print results (or drive / talk to the experiment service).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use graphmem_core::{
    run_supervised, FaultPlan, IoFaultPlan, RunReport, SupervisorConfig, SweepKind, SweepOutcome,
};
use graphmem_graph::Dataset;
use graphmem_server::{http, Server, ServerConfig};
use graphmem_telemetry::json::{JsonObject, JsonValue};
use graphmem_telemetry::{JsonlSink, TraceConfig, Tracer};

use crate::parse::{Command, ExecArgs, RunArgs, ServeArgs, SubmitArgs};
use crate::USAGE;

/// Process exit code: everything succeeded.
pub const EXIT_OK: u8 = 0;
/// Process exit code: the command failed outright.
pub const EXIT_FAILURE: u8 = 1;
/// Process exit code: bad usage (reserved for `main`'s parse errors).
pub const EXIT_USAGE: u8 = 2;
/// Process exit code: a sweep finished but some configs failed; the
/// completed reports were still printed (and checkpointed when a
/// manifest is configured).
pub const EXIT_PARTIAL: u8 = 3;
/// Process exit code: interrupted by SIGINT (128 + 2, the shell
/// convention); completed work was flushed to the manifest.
pub const EXIT_INTERRUPTED: u8 = 130;

/// Execute a parsed command, writing human-readable output to stdout.
/// Returns the process exit code (`EXIT_OK` / `EXIT_FAILURE` /
/// `EXIT_PARTIAL` / `EXIT_INTERRUPTED`).
pub fn execute(cmd: Command) -> u8 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            EXIT_OK
        }
        Command::Datasets => {
            datasets();
            EXIT_OK
        }
        Command::Run(args) => run_cmd(&args),
        Command::Sweep(kind, args) => sweep_cmd(kind, &args),
        Command::Serve(args) => serve_cmd(&args),
        Command::Submit(args) => submit_cmd(&args),
    }
}

fn run_cmd(args: &RunArgs) -> u8 {
    let mut experiment = match args.spec.to_experiment() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_FAILURE;
        }
    };
    if let Some(path) = &args.exec.telemetry {
        let sink = match JsonlSink::create(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create telemetry file {path}: {e}");
                return EXIT_FAILURE;
            }
        };
        experiment =
            experiment.telemetry(Tracer::enabled(TraceConfig::default().sink(Box::new(sink))));
    }
    if args.exec.attribution {
        experiment = experiment.attribution(true);
    }
    if let Some(engine) = args.exec.engine {
        experiment = experiment.access_engine(engine);
    }
    let report = match experiment.try_run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_FAILURE;
        }
    };
    if let (Some(path), Some(series)) = (&args.exec.series, &report.series) {
        if let Err(e) = series.write_csv(path) {
            eprintln!("cannot write series file {path}: {e}");
            return EXIT_FAILURE;
        }
        // The attribution profiler's memory-state series rides along as a
        // second CSV next to the metrics series.
        if let Some(mem) = report.attribution.as_ref().and_then(|a| a.memory.as_ref()) {
            let mpath = format!("{path}.memstate.csv");
            if let Err(e) = mem.write_csv(&mpath) {
                eprintln!("cannot write memory-state series file {mpath}: {e}");
                return EXIT_FAILURE;
            }
        }
    }
    if args.exec.json {
        println!("{}", report.to_json());
    } else {
        print_report(&report);
        if let Some(attr) = &report.attribution {
            println!("  attribution (per array, whole run):");
            for line in attr.render_table().lines() {
                println!("    {line}");
            }
        }
    }
    EXIT_OK
}

fn print_report(r: &RunReport) {
    println!("{}", r.summary());
    println!(
        "  cycles: preprocess {:.2}M + init {:.2}M + compute {:.2}M = {:.2}M total",
        r.preprocess_cycles as f64 / 1e6,
        r.init_cycles as f64 / 1e6,
        r.compute_cycles as f64 / 1e6,
        r.total_cycles() as f64 / 1e6
    );
    println!(
        "  tlb: dtlb miss {:.1}%, page walks {:.1}% of accesses, translation {:.1}% of compute",
        r.dtlb_miss_rate() * 100.0,
        r.stlb_miss_rate() * 100.0,
        r.translation_overhead() * 100.0
    );
    println!(
        "  huge pages: {:.1}% of property array, {:.2}% of total footprint ({} KiB)",
        r.property_huge_fraction() * 100.0,
        r.huge_memory_fraction() * 100.0,
        r.total_huge_bytes / 1024
    );
    println!(
        "  os: {} faults ({} huge, {} fallbacks), {} compactions, {} promotions, {} swap-ins",
        r.os.faults,
        r.os.huge_faults,
        r.os.huge_fallbacks,
        r.os.direct_compactions,
        r.os.promotions,
        r.os.swap_ins
    );
    if let Some(gov) = &r.governor {
        println!(
            "  governor [{}]: {} epochs, {} promotions, {} demotions, {} denied by fragmentation",
            gov.config, gov.epochs, gov.promotions, gov.demotions, gov.denied_by_fragmentation
        );
    }
}

/// The process-wide SIGINT flag, installing the handler on first use.
/// Ctrl-C flips the flag; the supervisor records not-yet-started configs
/// as interrupted and drains, so everything already completed has been
/// flushed to the manifest by the time the process exits with
/// [`EXIT_INTERRUPTED`].
fn sigint_flag() -> Arc<AtomicBool> {
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    Arc::clone(FLAG.get_or_init(|| {
        const SIGINT: i32 = 2;
        extern "C" fn on_sigint(_: i32) {
            if let Some(flag) = flag_storage().get() {
                flag.store(true, Ordering::Relaxed);
            }
        }
        fn flag_storage() -> &'static OnceLock<Arc<AtomicBool>> {
            static STORAGE: OnceLock<Arc<AtomicBool>> = OnceLock::new();
            &STORAGE
        }
        extern "C" {
            // Always present via the C runtime; avoids a libc crate
            // dependency for one call. `usize` stands in for the
            // handler-pointer type.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let flag = Arc::new(AtomicBool::new(false));
        let _ = flag_storage().set(Arc::clone(&flag));
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
        flag
    }))
}

/// Assemble the supervisor configuration for a sweep's exec options.
fn supervisor_config(exec: &ExecArgs, threads: usize) -> SupervisorConfig {
    let mut faults = FaultPlan::none();
    for (index, fault) in &exec.chaos {
        faults = faults.inject(*index, fault.clone());
    }
    let mut manifest_faults = IoFaultPlan::none();
    for (index, kind) in &exec.io_chaos {
        manifest_faults = manifest_faults.inject(*index, *kind);
    }
    SupervisorConfig {
        threads,
        retries: exec.retries,
        timeout: exec.timeout_secs.map(Duration::from_secs_f64),
        manifest: exec.manifest.as_ref().map(PathBuf::from),
        resume: exec.resume.as_ref().map(PathBuf::from),
        faults,
        fsync: exec.fsync.unwrap_or_default(),
        manifest_faults,
        cancel: Some(sigint_flag()),
        ..SupervisorConfig::default()
    }
}

fn print_sweep_outcome(kind: SweepKind, params: &[f64], outcome: &SweepOutcome) {
    if outcome.resumed > 0 {
        println!(
            "resumed {} of {} configs from manifest",
            outcome.resumed,
            outcome.outcomes.len()
        );
    }
    println!(
        "{:>9} {:>12} {:>9} {:>9} {:>11}",
        kind.param_name(),
        "compute Mcy",
        "dtlb%",
        "walk%",
        "huge-mem%"
    );
    for (p, o) in params.iter().zip(&outcome.outcomes) {
        match o {
            Ok(r) => println!(
                "{:>9.2} {:>12.2} {:>8.1}% {:>8.1}% {:>10.2}%  {}",
                p,
                r.compute_cycles as f64 / 1e6,
                r.dtlb_miss_rate() * 100.0,
                r.stlb_miss_rate() * 100.0,
                r.huge_memory_fraction() * 100.0,
                if r.verified { "" } else { "WRONG RESULT" }
            ),
            Err(f) => println!(
                "{:>9.2} {:>12} {:>9} {:>9} {:>11}  FAILED[{}] after {} attempt{}: {}",
                p,
                "-",
                "-",
                "-",
                "-",
                f.error.code(),
                f.attempts,
                if f.attempts == 1 { "" } else { "s" },
                f.error
            ),
        }
    }
    let failed = outcome.failures().count();
    if failed > 0 {
        eprintln!(
            "{failed} of {} configs failed ({} completed)",
            outcome.outcomes.len(),
            outcome.reports().count()
        );
    }
}

fn sweep_cmd(kind: SweepKind, args: &RunArgs) -> u8 {
    let threads = args.exec.threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let exps = match args.spec.experiments(Some(kind)) {
        Ok(exps) => exps,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_FAILURE;
        }
    };
    let config = supervisor_config(&args.exec, threads);
    let outcome = match run_supervised(&exps, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_FAILURE;
        }
    };
    print_sweep_outcome(kind, kind.params(), &outcome);
    if outcome.interrupted {
        eprintln!("interrupted; completed configs are in the manifest (resume with --resume)");
        EXIT_INTERRUPTED
    } else if outcome.is_complete() {
        EXIT_OK
    } else {
        EXIT_PARTIAL
    }
}

fn serve_cmd(args: &ServeArgs) -> u8 {
    let mut io_faults = IoFaultPlan::none();
    for (index, kind) in &args.io_chaos {
        io_faults = io_faults.inject(*index, *kind);
    }
    let mut compute_faults = FaultPlan::none();
    for (index, fault) in &args.chaos {
        compute_faults = compute_faults.inject(*index, fault.clone());
    }
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        queue_capacity: args.queue,
        cache_dir: args.cache_dir.as_ref().map(PathBuf::from),
        retries: args.retries,
        timeout: args.timeout_ms.map(Duration::from_millis),
        fsync: args.fsync.unwrap_or(defaults.fsync),
        io_faults,
        compute_faults,
        breaker_threshold: args.breaker.unwrap_or(defaults.breaker_threshold),
        breaker_cooldown: args
            .breaker_cooldown_ms
            .map_or(defaults.breaker_cooldown, Duration::from_millis),
        ..defaults
    };
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start experiment service on {}: {e}", args.addr);
            return EXIT_FAILURE;
        }
    };
    println!("graphmem experiment service listening on {}", server.addr());
    println!("  POST /runs | GET /runs/<id> | GET /results/<hash> | GET /metrics | GET /healthz");
    let cancel = sigint_flag();
    server.run_until(&cancel);
    eprintln!("interrupt received: queue drained, results flushed");
    EXIT_OK
}

fn submit_cmd(args: &SubmitArgs) -> u8 {
    let body = {
        let mut o = JsonObject::new();
        o.field_raw("spec", &args.spec.to_json());
        if let Some(kind) = args.sweep {
            o.field_str("sweep", kind.token());
        }
        o.finish()
    };
    let (status, response) = match http::request(&args.addr, "POST", "/runs", &body) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot reach experiment service at {}: {e}", args.addr);
            return EXIT_FAILURE;
        }
    };
    if status != 202 {
        eprintln!("submission rejected ({status}): {response}");
        return EXIT_FAILURE;
    }
    let Some(job) = JsonValue::parse(&response)
        .ok()
        .and_then(|v| v.get("job").and_then(JsonValue::as_u64))
    else {
        eprintln!("malformed acceptance from server: {response}");
        return EXIT_FAILURE;
    };
    if !args.json {
        println!("accepted as job {job}; streaming progress");
    }

    let mut failed = 0u64;
    let mut interrupted = 0u64;
    let echo_raw = args.json;
    let streamed = http::stream_lines(&args.addr, &format!("/runs/{job}"), |line| {
        if echo_raw {
            println!("{line}");
        } else {
            print_progress_line(line);
        }
        if let Ok(v) = JsonValue::parse(line) {
            match v.get("status").and_then(JsonValue::as_str) {
                Some("failed") => failed += 1,
                Some("interrupted") => interrupted += 1,
                _ => {}
            }
        }
    });
    match streamed {
        Ok(200) => {}
        Ok(status) => {
            eprintln!("progress stream for job {job} failed with status {status}");
            return EXIT_FAILURE;
        }
        Err(e) => {
            eprintln!("progress stream for job {job} dropped: {e}");
            return EXIT_FAILURE;
        }
    }
    if interrupted > 0 {
        eprintln!("server shut down before the job finished");
        EXIT_INTERRUPTED
    } else if failed > 0 {
        EXIT_PARTIAL
    } else {
        EXIT_OK
    }
}

/// Render one streamed progress row as prose.
fn print_progress_line(line: &str) {
    let Ok(v) = JsonValue::parse(line) else {
        println!("{line}");
        return;
    };
    match v.get("index").and_then(JsonValue::as_u64) {
        Some(index) => {
            let hash = v.get("hash").and_then(JsonValue::as_str).unwrap_or("?");
            let status = v.get("status").and_then(JsonValue::as_str).unwrap_or("?");
            match status {
                "done" => {
                    let cached = v.get("cached").and_then(JsonValue::as_bool) == Some(true);
                    println!(
                        "  config {index} [{hash}]: done{}",
                        if cached { " (cached)" } else { "" }
                    );
                }
                "failed" => {
                    let message = v.get("message").and_then(JsonValue::as_str).unwrap_or("");
                    println!("  config {index} [{hash}]: FAILED {message}");
                }
                other => println!("  config {index} [{hash}]: {other}"),
            }
        }
        None => {
            // The trailing summary row.
            let done = v.get("done").and_then(JsonValue::as_u64).unwrap_or(0);
            let total = v.get("total").and_then(JsonValue::as_u64).unwrap_or(0);
            let cached = v.get("cached").and_then(JsonValue::as_u64).unwrap_or(0);
            println!("job finished: {done}/{total} done ({cached} from cache)");
        }
    }
}

fn datasets() {
    println!(
        "{:<8} {:>6} {:>10} {:>11} {:>9}  structure",
        "name", "scale", "vertices", "edges", "avg-deg"
    );
    for ds in Dataset::ALL {
        let cfg = ds.rmat_config(ds.default_scale());
        println!(
            "{:<8} {:>6} {:>10} {:>11} {:>9}  {}",
            ds.name(),
            ds.default_scale(),
            1u64 << ds.default_scale(),
            (cfg.avg_degree as u64) << ds.default_scale(),
            cfg.avg_degree,
            if cfg.shuffle_ids {
                "shuffled IDs (no hub clustering)"
            } else {
                "hubs clustered at low IDs"
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse, Command};
    use graphmem_core::{sweep, Experiment};

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn experiments(kind: SweepKind, run: &RunArgs) -> Vec<Experiment> {
        run.spec.experiments(Some(kind)).expect("valid spec")
    }

    /// Build and run one sweep's experiments on `threads` workers,
    /// returning `(parameter, report)` rows in sweep order.
    fn sweep_rows(kind: SweepKind, run: &RunArgs, threads: usize) -> Vec<(f64, RunReport)> {
        let reports = sweep::run_parallel(experiments(kind, run), threads).expect("sweep failed");
        kind.params().iter().copied().zip(reports).collect()
    }

    /// End-to-end: a tiny run through the real lowering path must not
    /// panic and must produce a verified report.
    #[test]
    fn build_and_run_tiny_experiment() {
        let Command::Run(run) = parse(&args(
            "run --dataset wiki --kernel bfs --scale 11 --policy thp",
        ))
        .unwrap() else {
            panic!()
        };
        let report = run.spec.to_experiment().unwrap().run();
        assert!(report.verified);
        assert!(report.compute_cycles > 0);
    }

    #[test]
    fn datasets_listing_does_not_panic() {
        datasets();
    }

    #[test]
    fn sweep_command_executes_end_to_end() {
        let cmd = parse(&args(
            "sweep selectivity --dataset wiki --scale 11 --preprocess dbg",
        ))
        .unwrap();
        assert_eq!(execute(cmd), EXIT_OK); // all six selectivity points run
    }

    #[test]
    fn sweep_two_threads_bit_identical_to_serial() {
        let Command::Sweep(kind, run) = parse(&args(
            "sweep frag --dataset wiki --scale 11 --policy thp --threads 2",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(run.exec.threads, Some(2));
        let par = sweep_rows(kind, &run, 2);
        let ser = sweep_rows(kind, &run, 1);
        assert_eq!(par.len(), ser.len());
        for ((pp, pr), (sp, sr)) in par.iter().zip(&ser) {
            assert_eq!(pp, sp);
            assert_eq!(pr.to_json(), sr.to_json(), "thread count changed a report");
        }
    }

    #[test]
    fn chaotic_sweep_reports_partial_failure() {
        let cmd = parse(&args(
            "sweep frag --dataset wiki --scale 11 --chaos panic@1",
        ))
        .unwrap();
        assert_eq!(execute(cmd), EXIT_PARTIAL);
    }

    #[test]
    fn chaotic_sweep_recovers_with_retries() {
        let cmd = parse(&args(
            "sweep frag --dataset wiki --scale 11 --chaos io@1 --retries 2",
        ))
        .unwrap();
        assert_eq!(execute(cmd), EXIT_OK);
    }

    #[test]
    fn sweep_manifest_resume_round_trip() {
        let path =
            std::env::temp_dir().join(format!("graphmem_cli_resume_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let first = parse(&args(&format!(
            "sweep frag --dataset wiki --scale 11 --manifest {}",
            path.display()
        )))
        .unwrap();
        assert_eq!(execute(first), EXIT_OK);
        let resumed = parse(&args(&format!(
            "sweep frag --dataset wiki --scale 11 --resume {} --chaos panic@0",
            path.display()
        )))
        .unwrap();
        // Fully resumed: the injected panic never fires, nothing re-runs.
        let code = execute(resumed);
        let _ = std::fs::remove_file(&path);
        assert_eq!(code, EXIT_OK);
    }

    #[test]
    fn invalid_spec_fails_cleanly() {
        let cmd = parse(&args("run --dataset wiki --scale 40")).unwrap();
        assert_eq!(execute(cmd), EXIT_FAILURE); // scale out of range
    }

    #[test]
    fn submit_without_server_fails_cleanly() {
        let cmd = parse(&args("submit --addr 127.0.0.1:1 --dataset wiki --scale 10")).unwrap();
        assert_eq!(execute(cmd), EXIT_FAILURE);
    }

    #[test]
    fn print_report_formats() {
        let Command::Run(run) = parse(&args("run --dataset wiki --scale 10")).unwrap() else {
            panic!()
        };
        let report = run.spec.to_experiment().unwrap().run();
        print_report(&report); // smoke: formatting must not panic
    }

    #[test]
    fn attribution_flag_attaches_profile() {
        let Command::Run(run) =
            parse(&args("run --dataset wiki --scale 11 --attribution --json")).unwrap()
        else {
            panic!()
        };
        assert!(run.exec.attribution);
        let report = run.spec.to_experiment().unwrap().attribution(true).run();
        assert!(report.to_json().contains(r#""attribution":{"regions":["#));
        let attr = report.attribution.expect("profile attached");
        assert!(attr.region("property_array").is_some());
        // The rendered table is what prose mode prints.
        assert!(attr.render_table().contains("property_array"));
    }

    #[test]
    fn progress_lines_render_without_panicking() {
        print_progress_line("{\"index\":0,\"hash\":\"abcd\",\"status\":\"done\",\"cached\":true}");
        print_progress_line(
            "{\"index\":1,\"status\":\"failed\",\"code\":\"panic\",\"message\":\"x\"}",
        );
        print_progress_line(
            "{\"job\":1,\"total\":2,\"done\":1,\"cached\":1,\"failed\":1,\"interrupted\":0}",
        );
        print_progress_line("not json");
    }
}
