//! Command execution: build experiments from parsed specs and print
//! results.

use graphmem_core::{sweep, Experiment, RunReport};
use graphmem_graph::Dataset;
use graphmem_telemetry::{JsonlSink, TraceConfig, Tracer};

use crate::parse::{Command, RunSpec, SweepKind};
use crate::USAGE;

/// Execute a parsed command, writing human-readable output to stdout.
pub fn execute(cmd: Command) {
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::Datasets => datasets(),
        Command::Run(spec) => run_cmd(&spec),
        Command::Sweep(kind, spec) => sweep_cmd(kind, &spec),
    }
}

fn run_cmd(spec: &RunSpec) {
    let mut experiment = build(spec);
    if let Some(path) = &spec.telemetry {
        let sink = match JsonlSink::create(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create telemetry file {path}: {e}");
                std::process::exit(1);
            }
        };
        experiment =
            experiment.telemetry(Tracer::enabled(TraceConfig::default().sink(Box::new(sink))));
    }
    let report = experiment.run();
    if let (Some(path), Some(series)) = (&spec.series, &report.series) {
        if let Err(e) = series.write_csv(path) {
            eprintln!("cannot write series file {path}: {e}");
            std::process::exit(1);
        }
    }
    if spec.json {
        println!("{}", report.to_json());
    } else {
        print_report(&report);
    }
}

fn build(spec: &RunSpec) -> Experiment {
    let mut e = Experiment::new(spec.dataset, spec.kernel)
        .policy(spec.policy)
        .preprocessing(spec.preprocess)
        .alloc_order(spec.order)
        .condition(spec.condition)
        .file_placement(spec.file);
    if let Some(s) = spec.scale {
        e = e.scale(s);
    }
    if !spec.verify {
        e = e.skip_verification();
    }
    if let Some(interval) = spec.sample_interval {
        e = e.sample_interval(interval);
    }
    e
}

fn print_report(r: &RunReport) {
    println!("{}", r.summary());
    println!(
        "  cycles: preprocess {:.2}M + init {:.2}M + compute {:.2}M = {:.2}M total",
        r.preprocess_cycles as f64 / 1e6,
        r.init_cycles as f64 / 1e6,
        r.compute_cycles as f64 / 1e6,
        r.total_cycles() as f64 / 1e6
    );
    println!(
        "  tlb: dtlb miss {:.1}%, page walks {:.1}% of accesses, translation {:.1}% of compute",
        r.dtlb_miss_rate() * 100.0,
        r.stlb_miss_rate() * 100.0,
        r.translation_overhead() * 100.0
    );
    println!(
        "  huge pages: {:.1}% of property array, {:.2}% of total footprint ({} KiB)",
        r.property_huge_fraction() * 100.0,
        r.huge_memory_fraction() * 100.0,
        r.total_huge_bytes / 1024
    );
    println!(
        "  os: {} faults ({} huge, {} fallbacks), {} compactions, {} promotions, {} swap-ins",
        r.os.faults,
        r.os.huge_faults,
        r.os.huge_fallbacks,
        r.os.direct_compactions,
        r.os.promotions,
        r.os.swap_ins
    );
}

/// Build and run one sweep's experiments on `threads` workers, returning
/// `(parameter, report)` rows in sweep order. The experiments are
/// deterministic and independent, so any thread count produces reports
/// bit-identical to the serial loop.
fn sweep_rows(kind: SweepKind, spec: &RunSpec, threads: usize) -> Vec<(f64, RunReport)> {
    let proto = build(spec);
    let (params, exps): (&[f64], Vec<_>) = match kind {
        SweepKind::Pressure => (
            &sweep::PRESSURE_LADDER,
            sweep::pressure_experiments(&proto, &sweep::PRESSURE_LADDER),
        ),
        SweepKind::Fragmentation => (
            &sweep::FRAGMENTATION_LEVELS,
            sweep::fragmentation_experiments(&proto, &sweep::FRAGMENTATION_LEVELS),
        ),
        SweepKind::Selectivity => (
            &sweep::SELECTIVITY_LEVELS,
            sweep::selectivity_experiments(&proto, &sweep::SELECTIVITY_LEVELS),
        ),
    };
    let reports = sweep::run_parallel(exps, threads);
    params.iter().copied().zip(reports).collect()
}

fn sweep_cmd(kind: SweepKind, spec: &RunSpec) {
    let threads = spec.threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let rows = sweep_rows(kind, spec, threads);
    let param = match kind {
        SweepKind::Pressure => "surplus",
        SweepKind::Fragmentation => "frag",
        SweepKind::Selectivity => "s",
    };
    println!(
        "{:>9} {:>12} {:>9} {:>9} {:>11}",
        param, "compute Mcy", "dtlb%", "walk%", "huge-mem%"
    );
    for (p, r) in rows {
        println!(
            "{:>9.2} {:>12.2} {:>8.1}% {:>8.1}% {:>10.2}%  {}",
            p,
            r.compute_cycles as f64 / 1e6,
            r.dtlb_miss_rate() * 100.0,
            r.stlb_miss_rate() * 100.0,
            r.huge_memory_fraction() * 100.0,
            if r.verified { "" } else { "WRONG RESULT" }
        );
    }
}

fn datasets() {
    println!(
        "{:<8} {:>6} {:>10} {:>11} {:>9}  structure",
        "name", "scale", "vertices", "edges", "avg-deg"
    );
    for ds in Dataset::ALL {
        let cfg = ds.rmat_config(ds.default_scale());
        println!(
            "{:<8} {:>6} {:>10} {:>11} {:>9}  {}",
            ds.name(),
            ds.default_scale(),
            1u64 << ds.default_scale(),
            (cfg.avg_degree as u64) << ds.default_scale(),
            cfg.avg_degree,
            if cfg.shuffle_ids {
                "shuffled IDs (no hub clustering)"
            } else {
                "hubs clustered at low IDs"
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse, Command};

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    /// End-to-end: a tiny run through the real executor must not panic and
    /// must produce a verified report (captured implicitly — a wrong result
    /// panics inside Experiment assertions only via summary text, so we
    /// execute build() + run directly).
    #[test]
    fn build_and_run_tiny_experiment() {
        let Command::Run(spec) = parse(&args(
            "run --dataset wiki --kernel bfs --scale 11 --policy thp",
        ))
        .unwrap() else {
            panic!()
        };
        let report = build(&spec).run();
        assert!(report.verified);
        assert!(report.compute_cycles > 0);
    }

    #[test]
    fn datasets_listing_does_not_panic() {
        datasets();
    }

    #[test]
    fn sweep_command_executes_end_to_end() {
        let cmd = parse(&args(
            "sweep selectivity --dataset wiki --scale 11 --preprocess dbg",
        ))
        .unwrap();
        execute(cmd); // all six selectivity points run and print
    }

    #[test]
    fn sweep_two_threads_bit_identical_to_serial() {
        let Command::Sweep(kind, spec) = parse(&args(
            "sweep frag --dataset wiki --scale 11 --policy thp --threads 2",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(spec.threads, Some(2));
        let par = sweep_rows(kind, &spec, 2);
        let ser = sweep_rows(kind, &spec, 1);
        assert_eq!(par.len(), ser.len());
        for ((pp, pr), (sp, sr)) in par.iter().zip(&ser) {
            assert_eq!(pp, sp);
            assert_eq!(pr.to_json(), sr.to_json(), "thread count changed a report");
        }
    }

    #[test]
    fn print_report_formats() {
        let Command::Run(spec) = parse(&args("run --dataset wiki --scale 10")).unwrap() else {
            panic!()
        };
        let report = build(&spec).run();
        print_report(&report); // smoke: formatting must not panic
    }
}
