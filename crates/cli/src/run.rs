//! Command execution: build experiments from parsed specs and print
//! results.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use graphmem_core::{
    run_supervised, sweep, Experiment, FaultPlan, RunReport, SupervisorConfig, SweepOutcome,
};
use graphmem_graph::Dataset;
use graphmem_telemetry::{JsonlSink, TraceConfig, Tracer};

use crate::parse::{Command, RunSpec, SweepKind};
use crate::USAGE;

/// Process exit code: everything succeeded.
pub const EXIT_OK: u8 = 0;
/// Process exit code: the command failed outright.
pub const EXIT_FAILURE: u8 = 1;
/// Process exit code: bad usage (reserved for `main`'s parse errors).
pub const EXIT_USAGE: u8 = 2;
/// Process exit code: a sweep finished but some configs failed; the
/// completed reports were still printed (and checkpointed when a
/// manifest is configured).
pub const EXIT_PARTIAL: u8 = 3;
/// Process exit code: interrupted by SIGINT (128 + 2, the shell
/// convention); completed work was flushed to the manifest.
pub const EXIT_INTERRUPTED: u8 = 130;

/// Execute a parsed command, writing human-readable output to stdout.
/// Returns the process exit code (`EXIT_OK` / `EXIT_FAILURE` /
/// `EXIT_PARTIAL` / `EXIT_INTERRUPTED`).
pub fn execute(cmd: Command) -> u8 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            EXIT_OK
        }
        Command::Datasets => {
            datasets();
            EXIT_OK
        }
        Command::Run(spec) => run_cmd(&spec),
        Command::Sweep(kind, spec) => sweep_cmd(kind, &spec),
    }
}

fn run_cmd(spec: &RunSpec) -> u8 {
    let mut experiment = build(spec);
    if let Some(path) = &spec.telemetry {
        let sink = match JsonlSink::create(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot create telemetry file {path}: {e}");
                return EXIT_FAILURE;
            }
        };
        experiment =
            experiment.telemetry(Tracer::enabled(TraceConfig::default().sink(Box::new(sink))));
    }
    let report = match experiment.try_run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_FAILURE;
        }
    };
    if let (Some(path), Some(series)) = (&spec.series, &report.series) {
        if let Err(e) = series.write_csv(path) {
            eprintln!("cannot write series file {path}: {e}");
            return EXIT_FAILURE;
        }
    }
    if spec.json {
        println!("{}", report.to_json());
    } else {
        print_report(&report);
    }
    EXIT_OK
}

fn build(spec: &RunSpec) -> Experiment {
    let mut e = Experiment::new(spec.dataset, spec.kernel)
        .policy(spec.policy)
        .preprocessing(spec.preprocess)
        .alloc_order(spec.order)
        .condition(spec.condition)
        .file_placement(spec.file);
    if let Some(s) = spec.scale {
        e = e.scale(s);
    }
    if !spec.verify {
        e = e.skip_verification();
    }
    if let Some(interval) = spec.sample_interval {
        e = e.sample_interval(interval);
    }
    e
}

fn print_report(r: &RunReport) {
    println!("{}", r.summary());
    println!(
        "  cycles: preprocess {:.2}M + init {:.2}M + compute {:.2}M = {:.2}M total",
        r.preprocess_cycles as f64 / 1e6,
        r.init_cycles as f64 / 1e6,
        r.compute_cycles as f64 / 1e6,
        r.total_cycles() as f64 / 1e6
    );
    println!(
        "  tlb: dtlb miss {:.1}%, page walks {:.1}% of accesses, translation {:.1}% of compute",
        r.dtlb_miss_rate() * 100.0,
        r.stlb_miss_rate() * 100.0,
        r.translation_overhead() * 100.0
    );
    println!(
        "  huge pages: {:.1}% of property array, {:.2}% of total footprint ({} KiB)",
        r.property_huge_fraction() * 100.0,
        r.huge_memory_fraction() * 100.0,
        r.total_huge_bytes / 1024
    );
    println!(
        "  os: {} faults ({} huge, {} fallbacks), {} compactions, {} promotions, {} swap-ins",
        r.os.faults,
        r.os.huge_faults,
        r.os.huge_fallbacks,
        r.os.direct_compactions,
        r.os.promotions,
        r.os.swap_ins
    );
}

/// The experiments a sweep runs, paired with the varied parameter values.
fn sweep_experiments(kind: SweepKind, spec: &RunSpec) -> (&'static [f64], Vec<Experiment>) {
    let proto = build(spec);
    match kind {
        SweepKind::Pressure => (
            &sweep::PRESSURE_LADDER,
            sweep::pressure_experiments(&proto, &sweep::PRESSURE_LADDER),
        ),
        SweepKind::Fragmentation => (
            &sweep::FRAGMENTATION_LEVELS,
            sweep::fragmentation_experiments(&proto, &sweep::FRAGMENTATION_LEVELS),
        ),
        SweepKind::Selectivity => (
            &sweep::SELECTIVITY_LEVELS,
            sweep::selectivity_experiments(&proto, &sweep::SELECTIVITY_LEVELS),
        ),
    }
}

/// The process-wide SIGINT flag, installing the handler on first use.
/// Ctrl-C flips the flag; the supervisor records not-yet-started configs
/// as interrupted and drains, so everything already completed has been
/// flushed to the manifest by the time the process exits with
/// [`EXIT_INTERRUPTED`].
fn sigint_flag() -> Arc<AtomicBool> {
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    Arc::clone(FLAG.get_or_init(|| {
        const SIGINT: i32 = 2;
        extern "C" fn on_sigint(_: i32) {
            if let Some(flag) = flag_storage().get() {
                flag.store(true, Ordering::Relaxed);
            }
        }
        fn flag_storage() -> &'static OnceLock<Arc<AtomicBool>> {
            static STORAGE: OnceLock<Arc<AtomicBool>> = OnceLock::new();
            &STORAGE
        }
        extern "C" {
            // Always present via the C runtime; avoids a libc crate
            // dependency for one call. `usize` stands in for the
            // handler-pointer type.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let flag = Arc::new(AtomicBool::new(false));
        let _ = flag_storage().set(Arc::clone(&flag));
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
        flag
    }))
}

/// Assemble the supervisor configuration for a sweep spec.
fn supervisor_config(spec: &RunSpec, threads: usize) -> SupervisorConfig {
    let mut faults = FaultPlan::none();
    for (index, fault) in &spec.chaos {
        faults = faults.inject(*index, fault.clone());
    }
    SupervisorConfig {
        threads,
        retries: spec.retries,
        timeout: spec.timeout_secs.map(Duration::from_secs_f64),
        manifest: spec.manifest.as_ref().map(PathBuf::from),
        resume: spec.resume.as_ref().map(PathBuf::from),
        faults,
        cancel: Some(sigint_flag()),
        ..SupervisorConfig::default()
    }
}

fn print_sweep_outcome(kind: SweepKind, params: &[f64], outcome: &SweepOutcome) {
    let param = match kind {
        SweepKind::Pressure => "surplus",
        SweepKind::Fragmentation => "frag",
        SweepKind::Selectivity => "s",
    };
    if outcome.resumed > 0 {
        println!(
            "resumed {} of {} configs from manifest",
            outcome.resumed,
            outcome.outcomes.len()
        );
    }
    println!(
        "{:>9} {:>12} {:>9} {:>9} {:>11}",
        param, "compute Mcy", "dtlb%", "walk%", "huge-mem%"
    );
    for (p, o) in params.iter().zip(&outcome.outcomes) {
        match o {
            Ok(r) => println!(
                "{:>9.2} {:>12.2} {:>8.1}% {:>8.1}% {:>10.2}%  {}",
                p,
                r.compute_cycles as f64 / 1e6,
                r.dtlb_miss_rate() * 100.0,
                r.stlb_miss_rate() * 100.0,
                r.huge_memory_fraction() * 100.0,
                if r.verified { "" } else { "WRONG RESULT" }
            ),
            Err(f) => println!(
                "{:>9.2} {:>12} {:>9} {:>9} {:>11}  FAILED[{}] after {} attempt{}: {}",
                p,
                "-",
                "-",
                "-",
                "-",
                f.error.code(),
                f.attempts,
                if f.attempts == 1 { "" } else { "s" },
                f.error
            ),
        }
    }
    let failed = outcome.failures().count();
    if failed > 0 {
        eprintln!(
            "{failed} of {} configs failed ({} completed)",
            outcome.outcomes.len(),
            outcome.reports().count()
        );
    }
}

fn sweep_cmd(kind: SweepKind, spec: &RunSpec) -> u8 {
    let threads = spec.threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let (params, exps) = sweep_experiments(kind, spec);
    let config = supervisor_config(spec, threads);
    let outcome = match run_supervised(&exps, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_FAILURE;
        }
    };
    print_sweep_outcome(kind, params, &outcome);
    if outcome.interrupted {
        eprintln!("interrupted; completed configs are in the manifest (resume with --resume)");
        EXIT_INTERRUPTED
    } else if outcome.is_complete() {
        EXIT_OK
    } else {
        EXIT_PARTIAL
    }
}

fn datasets() {
    println!(
        "{:<8} {:>6} {:>10} {:>11} {:>9}  structure",
        "name", "scale", "vertices", "edges", "avg-deg"
    );
    for ds in Dataset::ALL {
        let cfg = ds.rmat_config(ds.default_scale());
        println!(
            "{:<8} {:>6} {:>10} {:>11} {:>9}  {}",
            ds.name(),
            ds.default_scale(),
            1u64 << ds.default_scale(),
            (cfg.avg_degree as u64) << ds.default_scale(),
            cfg.avg_degree,
            if cfg.shuffle_ids {
                "shuffled IDs (no hub clustering)"
            } else {
                "hubs clustered at low IDs"
            }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse, Command};

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    /// Build and run one sweep's experiments on `threads` workers,
    /// returning `(parameter, report)` rows in sweep order.
    fn sweep_rows(kind: SweepKind, spec: &RunSpec, threads: usize) -> Vec<(f64, RunReport)> {
        let (params, exps) = sweep_experiments(kind, spec);
        let reports = sweep::run_parallel(exps, threads).expect("sweep failed");
        params.iter().copied().zip(reports).collect()
    }

    /// End-to-end: a tiny run through the real executor must not panic and
    /// must produce a verified report (captured implicitly — a wrong result
    /// panics inside Experiment assertions only via summary text, so we
    /// execute build() + run directly).
    #[test]
    fn build_and_run_tiny_experiment() {
        let Command::Run(spec) = parse(&args(
            "run --dataset wiki --kernel bfs --scale 11 --policy thp",
        ))
        .unwrap() else {
            panic!()
        };
        let report = build(&spec).run();
        assert!(report.verified);
        assert!(report.compute_cycles > 0);
    }

    #[test]
    fn datasets_listing_does_not_panic() {
        datasets();
    }

    #[test]
    fn sweep_command_executes_end_to_end() {
        let cmd = parse(&args(
            "sweep selectivity --dataset wiki --scale 11 --preprocess dbg",
        ))
        .unwrap();
        assert_eq!(execute(cmd), EXIT_OK); // all six selectivity points run
    }

    #[test]
    fn sweep_two_threads_bit_identical_to_serial() {
        let Command::Sweep(kind, spec) = parse(&args(
            "sweep frag --dataset wiki --scale 11 --policy thp --threads 2",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(spec.threads, Some(2));
        let par = sweep_rows(kind, &spec, 2);
        let ser = sweep_rows(kind, &spec, 1);
        assert_eq!(par.len(), ser.len());
        for ((pp, pr), (sp, sr)) in par.iter().zip(&ser) {
            assert_eq!(pp, sp);
            assert_eq!(pr.to_json(), sr.to_json(), "thread count changed a report");
        }
    }

    #[test]
    fn chaotic_sweep_reports_partial_failure() {
        let cmd = parse(&args(
            "sweep frag --dataset wiki --scale 11 --chaos panic@1",
        ))
        .unwrap();
        assert_eq!(execute(cmd), EXIT_PARTIAL);
    }

    #[test]
    fn chaotic_sweep_recovers_with_retries() {
        let cmd = parse(&args(
            "sweep frag --dataset wiki --scale 11 --chaos io@1 --retries 2",
        ))
        .unwrap();
        assert_eq!(execute(cmd), EXIT_OK);
    }

    #[test]
    fn sweep_manifest_resume_round_trip() {
        let path =
            std::env::temp_dir().join(format!("graphmem_cli_resume_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let first = parse(&args(&format!(
            "sweep frag --dataset wiki --scale 11 --manifest {}",
            path.display()
        )))
        .unwrap();
        assert_eq!(execute(first), EXIT_OK);
        let resumed = parse(&args(&format!(
            "sweep frag --dataset wiki --scale 11 --resume {} --chaos panic@0",
            path.display()
        )))
        .unwrap();
        // Fully resumed: the injected panic never fires, nothing re-runs.
        let code = execute(resumed);
        let _ = std::fs::remove_file(&path);
        assert_eq!(code, EXIT_OK);
    }

    #[test]
    fn print_report_formats() {
        let Command::Run(spec) = parse(&args("run --dataset wiki --scale 10")).unwrap() else {
            panic!()
        };
        let report = build(&spec).run();
        print_report(&report); // smoke: formatting must not panic
    }
}
