//! Layout and initialization of the four graph data structures in
//! simulated memory.

use graphmem_graph::Csr;
use graphmem_os::System;

use crate::kernels::Kernel;
use crate::profile::AccessProfile;
use crate::simarray::SimArray;

/// The order in which arrays are *first touched* (and therefore compete
/// for huge pages at fault time) — the variable of paper §4.3.1 / Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocOrder {
    /// The natural program order: CSR data is loaded from files first, the
    /// property array is initialized last — so under pressure it is the
    /// property array that loses the huge-page race.
    #[default]
    Natural,
    /// Graph-analytics-optimized: the property array is initialized first,
    /// prioritizing it for huge pages.
    PropertyFirst,
}

/// The paper's data structures (Fig. 5) laid out in a [`System`]:
/// vertex array (u64 offsets), edge array (u32 neighbor IDs), optional
/// values array (u32 weights), and one or two property arrays (u64),
/// depending on the kernel.
#[derive(Debug)]
pub struct GraphArrays {
    /// Vertex (offset) array.
    pub vertex: SimArray<u64>,
    /// Edge (neighbor) array.
    pub edge: SimArray<u32>,
    /// Values (weight) array, present for SSSP.
    pub values: Option<SimArray<u32>>,
    /// Property array(s): `[dist]` for BFS/SSSP, `[rank, next_rank]`
    /// (f64 bit patterns) for PageRank.
    pub prop: Vec<SimArray<u64>>,
    initialized: bool,
}

impl GraphArrays {
    /// `mmap` all arrays for running `kernel` on `csr`. Nothing is touched
    /// yet: call [`GraphArrays::initialize`] after applying any `madvise`
    /// policy to the regions (the real program order: reserve, advise,
    /// then fault).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is SSSP and `csr` has no weights.
    pub fn map(sys: &mut System, csr: &Csr, kernel: Kernel) -> Self {
        Self::map_with(sys, csr, kernel, false)
    }

    /// Like [`GraphArrays::map`], optionally placing the property array(s)
    /// in hugetlbfs-backed regions (the caller must have reserved enough
    /// pool pages via [`System::hugetlb_reserve`]).
    pub fn map_with(sys: &mut System, csr: &Csr, kernel: Kernel, hugetlb_property: bool) -> Self {
        let n = csr.num_vertices() as usize;
        let vertex = SimArray::attach(sys, "vertex_array", csr.offsets().to_vec());
        let edge = SimArray::attach(sys, "edge_array", csr.edges().to_vec());
        let values = if kernel.needs_weights() {
            let w = csr
                .values()
                .expect("SSSP requires a weighted graph")
                .to_vec();
            Some(SimArray::attach(sys, "values_array", w))
        } else {
            None
        };
        let prop = kernel
            .property_names()
            .iter()
            .map(|name| {
                if hugetlb_property {
                    SimArray::attach_hugetlb(sys, name, vec![0u64; n])
                } else {
                    SimArray::attach(sys, name, vec![0u64; n])
                }
            })
            .collect();
        GraphArrays {
            vertex,
            edge,
            values,
            prop,
            initialized: false,
        }
    }

    /// First-touch everything in the given order: CSR arrays are loaded
    /// from "files" (charging I/O and occupying page cache per the
    /// system's placement policy), property arrays are zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn initialize(&mut self, sys: &mut System, order: AllocOrder) {
        assert!(!self.initialized, "arrays already initialized");
        self.initialized = true;
        match order {
            AllocOrder::Natural => {
                self.load_csr(sys);
                self.init_props(sys);
            }
            AllocOrder::PropertyFirst => {
                self.init_props(sys);
                self.load_csr(sys);
            }
        }
    }

    fn load_csr(&mut self, sys: &mut System) {
        self.vertex.load_from_file(sys);
        self.edge.load_from_file(sys);
        if let Some(v) = &mut self.values {
            v.load_from_file(sys);
        }
    }

    fn init_props(&mut self, sys: &mut System) {
        for p in &mut self.prop {
            p.populate(sys);
        }
    }

    /// Total footprint in bytes (the paper's per-configuration "Footprint"
    /// column of Table 2).
    pub fn footprint_bytes(&self) -> u64 {
        self.vertex.bytes()
            + self.edge.bytes()
            + self.values.as_ref().map_or(0, |v| v.bytes())
            + self.prop.iter().map(|p| p.bytes()).sum::<u64>()
    }

    /// Bytes of the property array(s) only.
    pub fn property_bytes(&self) -> u64 {
        self.prop.iter().map(|p| p.bytes()).sum()
    }

    /// Per-array access profile (Fig. 4).
    pub fn profile(&self) -> AccessProfile {
        let mut arrays = vec![
            (
                self.vertex.name(),
                self.vertex.counters(),
                self.vertex.bytes(),
            ),
            (self.edge.name(), self.edge.counters(), self.edge.bytes()),
        ];
        if let Some(v) = &self.values {
            arrays.push((v.name(), v.counters(), v.bytes()));
        }
        for p in &self.prop {
            arrays.push((p.name(), p.counters(), p.bytes()));
        }
        AccessProfile::from_raw(arrays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmem_graph::Dataset;
    use graphmem_os::{SystemSpec, ThpMode};

    fn csr() -> Csr {
        Dataset::Wiki.generate_with_scale(10)
    }

    #[test]
    fn map_creates_expected_arrays() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let g = csr();
        let a = GraphArrays::map(&mut sys, &g, Kernel::Bfs);
        assert_eq!(a.vertex.len(), g.num_vertices() as usize + 1);
        assert_eq!(a.edge.len() as u64, g.num_edges());
        assert!(a.values.is_none());
        assert_eq!(a.prop.len(), 1);

        let pr = GraphArrays::map(&mut sys, &g, Kernel::Pagerank);
        assert_eq!(pr.prop.len(), 2);
    }

    #[test]
    fn sssp_requires_weights() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let g = Dataset::Wiki.generate_weighted_with_scale(10);
        let a = GraphArrays::map(&mut sys, &g, Kernel::Sssp);
        assert!(a.values.is_some());
        let (v, e, w) = g.array_bytes();
        assert_eq!(
            a.footprint_bytes(),
            v + e + w + (g.num_vertices() as u64) * 8
        );
    }

    #[test]
    #[should_panic(expected = "weighted")]
    fn sssp_on_unweighted_panics() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let _ = GraphArrays::map(&mut sys, &csr(), Kernel::Sssp);
    }

    #[test]
    fn natural_order_props_faulted_last() {
        // Under THP Always with constrained huge blocks, natural order
        // gives the huge pages to the CSR arrays; property-first flips it.
        let mut spec = SystemSpec::scaled(64);
        spec.thp.mode = ThpMode::Always;
        spec.thp.fault_defrag = false;
        // Large enough that the property array spans multiple huge pages.
        let g = Dataset::Wiki.generate_with_scale(16);
        for (order, prop_should_win) in [
            (AllocOrder::Natural, false),
            (AllocOrder::PropertyFirst, true),
        ] {
            let mut sys = System::new(spec.clone());
            // Leave only enough pristine blocks for roughly the property
            // array.
            let mut a = GraphArrays::map(&mut sys, &g, Kernel::Bfs);
            let prop_bytes = a.property_bytes();
            let keep = prop_bytes + sys.geometry().bytes(graphmem_vm::PageSize::Huge);
            let nblocks = (sys.zone(1).free_bytes() - keep)
                / sys.geometry().bytes(graphmem_vm::PageSize::Huge);
            let _noise = graphmem_physmem::Noise::sprinkle(sys.zone_mut(1), nblocks, 0.03125);
            a.initialize(&mut sys, order);
            let prop_rep = sys.mapping_report(a.prop[0].base());
            if prop_should_win {
                assert!(
                    prop_rep.huge_fraction() > 0.5,
                    "property-first should huge-back the property array, got {}",
                    prop_rep.huge_fraction()
                );
            } else {
                assert!(
                    prop_rep.huge_fraction() < 0.5,
                    "natural order should starve the property array, got {}",
                    prop_rep.huge_fraction()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "already initialized")]
    fn double_initialize_panics() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let g = csr();
        let mut a = GraphArrays::map(&mut sys, &g, Kernel::Bfs);
        a.initialize(&mut sys, AllocOrder::Natural);
        a.initialize(&mut sys, AllocOrder::Natural);
    }
}
