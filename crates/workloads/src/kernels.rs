//! The paper's three kernels: push-based, frontier-driven BFS, PageRank,
//! and SSSP (§3.2), each in simulated and native form.
//!
//! The inner loops follow the pseudocode of paper Fig. 4: pop a vertex
//! from the worklist, read its offsets from the vertex array, stream its
//! neighbors from the edge array (and weights from the values array), and
//! conditionally read-modify-write the property array at each neighbor —
//! the pointer-indirect access highlighted as the memory-system
//! bottleneck.

use std::collections::VecDeque;

use graphmem_graph::{Csr, VertexId};
use graphmem_os::System;

use crate::arrays::GraphArrays;

/// Unvisited marker for BFS/SSSP distances.
pub const UNVISITED: u64 = u64::MAX;

/// PageRank damping factor.
const PR_DAMPING: f64 = 0.85;
/// PageRank convergence threshold (ε of §3.2).
const PR_EPSILON: f64 = 1e-4;
/// PageRank iteration cap. The paper iterates to convergence; at
/// simulation scale the ranking stabilizes qualitatively within a few
/// passes and the memory behaviour is identical every pass, so we bound
/// the work (documented in DESIGN.md).
const PR_MAX_ITERS: u32 = 6;

/// One of the paper's three applications, or an extension kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Breadth-First Search: minimum hop counts from a root.
    Bfs,
    /// PageRank: iterative rank propagation until convergence.
    Pagerank,
    /// Single-Source Shortest Paths: minimum weighted distances.
    Sssp,
    /// Connected Components via min-label propagation (extension: the
    /// paper cites CC as one of the applications built on BFS, §3.2).
    /// Labels propagate along out-edges to a fixpoint, so on directed
    /// inputs this computes forward-reachability components.
    Cc,
}

impl Kernel {
    /// The paper's three applications, in its order (figure benches
    /// iterate these).
    pub const ALL: [Kernel; 3] = [Kernel::Bfs, Kernel::Pagerank, Kernel::Sssp];

    /// The paper's kernels plus the extension kernels.
    pub const EXTENDED: [Kernel; 4] = [Kernel::Bfs, Kernel::Pagerank, Kernel::Sssp, Kernel::Cc];

    /// Short name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Bfs => "bfs",
            Kernel::Pagerank => "pr",
            Kernel::Sssp => "sssp",
            Kernel::Cc => "cc",
        }
    }

    /// Whether the kernel reads the values (weight) array.
    pub fn needs_weights(&self) -> bool {
        matches!(self, Kernel::Sssp)
    }

    /// Names of the property arrays the kernel updates.
    pub fn property_names(&self) -> &'static [&'static str] {
        match self {
            Kernel::Bfs | Kernel::Sssp | Kernel::Cc => &["property_array"],
            Kernel::Pagerank => &["property_array", "property_array_next"],
        }
    }

    /// Run the kernel through the simulator. Returns the property array
    /// contents (distances, or PageRank scores as `f64::to_bits`),
    /// identical to what [`Kernel::run_native`] returns.
    pub fn run_simulated(
        &self,
        sys: &mut System,
        arrays: &mut GraphArrays,
        root: VertexId,
    ) -> Vec<u64> {
        match self {
            Kernel::Bfs => bfs_simulated(sys, arrays, root),
            Kernel::Pagerank => pagerank_simulated(sys, arrays),
            Kernel::Sssp => sssp_simulated(sys, arrays, root),
            Kernel::Cc => cc_simulated(sys, arrays),
        }
    }

    /// Reference implementation on the host (no simulation).
    pub fn run_native(&self, csr: &Csr, root: VertexId) -> Vec<u64> {
        match self {
            Kernel::Bfs => bfs_native(csr, root),
            Kernel::Pagerank => pagerank_native(csr),
            Kernel::Sssp => sssp_native(csr, root),
            Kernel::Cc => cc_native(csr),
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The highest-out-degree vertex: a root that reaches a large component,
/// used by all experiments for determinism.
pub fn default_root(csr: &Csr) -> VertexId {
    (0..csr.num_vertices())
        .max_by_key(|&v| csr.degree(v))
        .unwrap_or(0)
}

// ----------------------------------------------------------------------
// BFS
// ----------------------------------------------------------------------

fn bfs_simulated(sys: &mut System, arrays: &mut GraphArrays, root: VertexId) -> Vec<u64> {
    let n = arrays.vertex.len() - 1;
    // Distances start UNVISITED; the property array was zero-initialized,
    // so write the sentinel sweep as the algorithm's setup pass.
    arrays.prop[0].scan_write_with(sys, 0, n, |_| UNVISITED);
    let mut queue = VecDeque::new();
    arrays.prop[0].set(sys, root as usize, 0);
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let dv = arrays.prop[0].get(sys, v as usize);
        let off = arrays.vertex.scan(sys, v as usize, 2);
        let (start, end) = (off[0] as usize, off[1] as usize);
        let nbrs = arrays.edge.scan(sys, start, end - start);
        for &u in nbrs {
            // The pointer-indirect read that dominates TLB misses:
            if arrays.prop[0].get(sys, u as usize) == UNVISITED {
                arrays.prop[0].set(sys, u as usize, dv + 1);
                queue.push_back(u);
            }
        }
    }
    arrays.prop[0].host_data().to_vec()
}

fn bfs_native(csr: &Csr, root: VertexId) -> Vec<u64> {
    let n = csr.num_vertices() as usize;
    let mut dist = vec![UNVISITED; n];
    let mut queue = VecDeque::new();
    dist[root as usize] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in csr.neighbors(v) {
            if dist[u as usize] == UNVISITED {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

// ----------------------------------------------------------------------
// PageRank (push-based, damped, fixed ε / iteration cap)
// ----------------------------------------------------------------------

fn pagerank_simulated(sys: &mut System, arrays: &mut GraphArrays) -> Vec<u64> {
    let n = arrays.vertex.len() - 1;
    let init = 1.0 / n as f64;
    arrays.prop[0].scan_write_with(sys, 0, n, |_| init.to_bits());
    for _iter in 0..PR_MAX_ITERS {
        let base = (1.0 - PR_DAMPING) / n as f64;
        arrays.prop[1].scan_write_with(sys, 0, n, |_| base.to_bits());
        for v in 0..n {
            let off = arrays.vertex.scan(sys, v, 2);
            let (start, end) = (off[0] as usize, off[1] as usize);
            if start == end {
                continue;
            }
            let rank = f64::from_bits(arrays.prop[0].get(sys, v));
            let contrib = PR_DAMPING * rank / (end - start) as f64;
            let nbrs = arrays.edge.scan(sys, start, end - start);
            // Pointer-indirect read-modify-write:
            arrays.prop[1]
                .gather_update(sys, nbrs, |cur| (f64::from_bits(cur) + contrib).to_bits());
        }
        // Convergence sweep (sequential reads of both arrays).
        let mut delta = 0.0;
        for v in 0..n {
            let old = f64::from_bits(arrays.prop[0].get(sys, v));
            let new = f64::from_bits(arrays.prop[1].get(sys, v));
            delta += (new - old).abs();
            arrays.prop[0].set(sys, v, new.to_bits());
        }
        if delta < PR_EPSILON {
            break;
        }
    }
    arrays.prop[0].host_data().to_vec()
}

fn pagerank_native(csr: &Csr) -> Vec<u64> {
    let n = csr.num_vertices() as usize;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _iter in 0..PR_MAX_ITERS {
        let base = (1.0 - PR_DAMPING) / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        for v in 0..n as u32 {
            let nbrs = csr.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let contrib = PR_DAMPING * rank[v as usize] / nbrs.len() as f64;
            for &u in nbrs {
                next[u as usize] += contrib;
            }
        }
        let mut delta = 0.0;
        for v in 0..n {
            delta += (next[v] - rank[v]).abs();
            rank[v] = next[v];
        }
        if delta < PR_EPSILON {
            break;
        }
    }
    rank.into_iter().map(f64::to_bits).collect()
}

// ----------------------------------------------------------------------
// SSSP (Bellman-Ford with an SPFA-style worklist)
// ----------------------------------------------------------------------

fn sssp_simulated(sys: &mut System, arrays: &mut GraphArrays, root: VertexId) -> Vec<u64> {
    let n = arrays.vertex.len() - 1;
    arrays.prop[0].scan_write_with(sys, 0, n, |_| UNVISITED);
    let mut queue = VecDeque::new();
    let mut in_queue = vec![false; n];
    arrays.prop[0].set(sys, root as usize, 0);
    queue.push_back(root);
    in_queue[root as usize] = true;
    while let Some(v) = queue.pop_front() {
        in_queue[v as usize] = false;
        let dv = arrays.prop[0].get(sys, v as usize);
        let off = arrays.vertex.scan(sys, v as usize, 2);
        let (start, end) = (off[0] as usize, off[1] as usize);
        let nbrs = arrays.edge.scan(sys, start, end - start);
        let weights = arrays
            .values
            .as_ref()
            .expect("SSSP arrays carry weights")
            .scan(sys, start, end - start);
        for (k, &u) in nbrs.iter().enumerate() {
            let u = u as usize;
            let nd = dv + weights[k] as u64;
            if nd < arrays.prop[0].get(sys, u) {
                arrays.prop[0].set(sys, u, nd);
                if !in_queue[u] {
                    in_queue[u] = true;
                    queue.push_back(u as VertexId);
                }
            }
        }
    }
    arrays.prop[0].host_data().to_vec()
}

fn sssp_native(csr: &Csr, root: VertexId) -> Vec<u64> {
    let n = csr.num_vertices() as usize;
    let mut dist = vec![UNVISITED; n];
    let mut queue = VecDeque::new();
    let mut in_queue = vec![false; n];
    dist[root as usize] = 0;
    queue.push_back(root);
    in_queue[root as usize] = true;
    while let Some(v) = queue.pop_front() {
        in_queue[v as usize] = false;
        let dv = dist[v as usize];
        let weights = csr.weights(v).expect("SSSP requires weights");
        for (i, &u) in csr.neighbors(v).iter().enumerate() {
            let nd = dv + weights[i] as u64;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                if !in_queue[u as usize] {
                    in_queue[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    dist
}

// ----------------------------------------------------------------------
// Connected Components (min-label propagation)
// ----------------------------------------------------------------------

fn cc_simulated(sys: &mut System, arrays: &mut GraphArrays) -> Vec<u64> {
    let n = arrays.vertex.len() - 1;
    let mut queue: VecDeque<VertexId> = VecDeque::with_capacity(n);
    let mut in_queue = vec![true; n];
    arrays.prop[0].scan_write_with(sys, 0, n, |v| v as u64);
    queue.extend(0..n as VertexId);
    while let Some(v) = queue.pop_front() {
        in_queue[v as usize] = false;
        let lv = arrays.prop[0].get(sys, v as usize);
        let off = arrays.vertex.scan(sys, v as usize, 2);
        let (start, end) = (off[0] as usize, off[1] as usize);
        let nbrs = arrays.edge.scan(sys, start, end - start);
        for &u in nbrs {
            let u = u as usize;
            if lv < arrays.prop[0].get(sys, u) {
                arrays.prop[0].set(sys, u, lv);
                if !in_queue[u] {
                    in_queue[u] = true;
                    queue.push_back(u as VertexId);
                }
            }
        }
    }
    arrays.prop[0].host_data().to_vec()
}

fn cc_native(csr: &Csr) -> Vec<u64> {
    let n = csr.num_vertices() as usize;
    let mut label: Vec<u64> = (0..n as u64).collect();
    let mut queue: VecDeque<VertexId> = (0..n as VertexId).collect();
    let mut in_queue = vec![true; n];
    while let Some(v) = queue.pop_front() {
        in_queue[v as usize] = false;
        let lv = label[v as usize];
        for &u in csr.neighbors(v) {
            if lv < label[u as usize] {
                label[u as usize] = lv;
                if !in_queue[u as usize] {
                    in_queue[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrays::AllocOrder;
    use graphmem_graph::Dataset;
    use graphmem_os::{SystemSpec, ThpMode};

    fn run_both(kernel: Kernel, weighted: bool, mode: ThpMode) -> (Vec<u64>, Vec<u64>) {
        let csr = if weighted {
            Dataset::Wiki.generate_weighted_with_scale(10)
        } else {
            Dataset::Wiki.generate_with_scale(10)
        };
        let mut spec = SystemSpec::scaled_demo();
        spec.thp.mode = mode;
        let mut sys = System::new(spec);
        let mut arrays = GraphArrays::map(&mut sys, &csr, kernel);
        arrays.initialize(&mut sys, AllocOrder::Natural);
        let root = default_root(&csr);
        let sim = kernel.run_simulated(&mut sys, &mut arrays, root);
        let native = kernel.run_native(&csr, root);
        (sim, native)
    }

    #[test]
    fn bfs_simulated_matches_native() {
        let (sim, native) = run_both(Kernel::Bfs, false, ThpMode::Never);
        assert_eq!(sim, native);
        assert!(native.iter().filter(|&&d| d != UNVISITED).count() > 100);
    }

    #[test]
    fn bfs_matches_under_thp_always() {
        let (sim, native) = run_both(Kernel::Bfs, false, ThpMode::Always);
        assert_eq!(sim, native);
    }

    #[test]
    fn pagerank_simulated_matches_native_bit_exact() {
        let (sim, native) = run_both(Kernel::Pagerank, false, ThpMode::Never);
        assert_eq!(sim, native);
        // Dangling vertices leak rank mass; how much depends on the exact
        // R-MAT instance, so keep this a loose sanity bound.
        let total: f64 = sim.iter().map(|&b| f64::from_bits(b)).sum();
        assert!((total - 1.0).abs() < 0.25, "rank mass {total}");
    }

    #[test]
    fn sssp_simulated_matches_native() {
        let (sim, native) = run_both(Kernel::Sssp, true, ThpMode::Never);
        assert_eq!(sim, native);
    }

    #[test]
    fn sssp_distances_bounded_by_bfs_hops_times_max_weight() {
        let csr = Dataset::Wiki.generate_weighted_with_scale(9);
        let root = default_root(&csr);
        let hops = Kernel::Bfs.run_native(
            &{
                // Same structure, unweighted view.
                csr.clone()
            },
            root,
        );
        let dist = Kernel::Sssp.run_native(&csr, root);
        for v in 0..dist.len() {
            if hops[v] == UNVISITED {
                assert_eq!(dist[v], UNVISITED);
            } else {
                assert!(dist[v] <= hops[v].saturating_mul(255));
            }
        }
    }

    #[test]
    fn cc_simulated_matches_native() {
        let (sim, native) = run_both(Kernel::Cc, false, ThpMode::Always);
        assert_eq!(sim, native);
        // Labels are fixpoints: no vertex can lower its label further.
        let csr = Dataset::Wiki.generate_with_scale(10);
        for v in 0..csr.num_vertices() {
            for &u in csr.neighbors(v) {
                assert!(native[u as usize] <= native[v as usize]);
            }
        }
    }

    #[test]
    fn cc_labels_are_component_representatives() {
        let csr = Dataset::Wiki.generate_with_scale(9);
        let labels = Kernel::Cc.run_native(&csr, 0);
        // Every label is a vertex id that labels itself.
        for &l in &labels {
            assert_eq!(labels[l as usize], l, "label {l} is not a root");
        }
    }

    #[test]
    fn default_root_is_max_degree() {
        let csr = Dataset::Wiki.generate_with_scale(9);
        let root = default_root(&csr);
        let max = (0..csr.num_vertices())
            .map(|v| csr.degree(v))
            .max()
            .unwrap();
        assert_eq!(csr.degree(root), max);
    }

    #[test]
    fn property_array_dominates_irregular_accesses() {
        let csr = Dataset::Kron25.generate_with_scale(11);
        let mut sys = System::new(SystemSpec::scaled_demo());
        let mut arrays = GraphArrays::map(&mut sys, &csr, Kernel::Bfs);
        arrays.initialize(&mut sys, AllocOrder::Natural);
        let root = default_root(&csr);
        Kernel::Bfs.run_simulated(&mut sys, &mut arrays, root);
        let profile = arrays.profile();
        let prop = profile.array("property_array").unwrap();
        let edge = profile.array("edge_array").unwrap();
        // Fig. 4's observation: edge and property arrays take the most
        // accesses; the property array's are irregular, the edge array's
        // sequential.
        assert!(prop.irregularity() > 0.5, "{}", prop.irregularity());
        assert!(edge.irregularity() < 0.35, "{}", edge.irregularity());
        assert!(prop.accesses() > profile.array("vertex_array").unwrap().accesses() / 2);
    }
}
