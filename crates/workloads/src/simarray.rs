//! Arrays whose every element access runs through the simulated MMU.

use std::cell::{Cell, RefCell};

use graphmem_os::System;
use graphmem_vm::VirtAddr;

/// Element types a [`SimArray`] may hold.
///
/// Sealed by construction: implemented for the fixed-width types the
/// workloads use. `BYTES` must equal the host size so host indexing and
/// simulated addresses stay congruent.
pub trait Element: Copy + Default + PartialEq + std::fmt::Debug + 'static {
    /// Size of one element in the simulated layout.
    const BYTES: u64;
}

impl Element for u32 {
    const BYTES: u64 = 4;
}
impl Element for u64 {
    const BYTES: u64 = 8;
}
impl Element for f64 {
    const BYTES: u64 = 8;
}

/// A typed array living at a fixed virtual range of the simulated process,
/// with element *values* stored host-side (the simulator models placement
/// and timing, not bytes).
///
/// Every [`SimArray::get`] / [`SimArray::set`] issues one simulated memory
/// access at the element's virtual address — triggering TLB lookups, page
/// walks, faults, and cache traffic — then reads/writes the host-side
/// value. Per-array counters feed the paper's Fig. 4-style access
/// profiles.
#[derive(Debug)]
pub struct SimArray<T: Element> {
    name: &'static str,
    base: VirtAddr,
    data: Vec<T>,
    reads: Cell<u64>,
    writes: Cell<u64>,
    seq_breaks: Cell<u64>,
    last_idx: Cell<u64>,
    /// Optional per-chunk access histogram: (chunk bytes, counts).
    page_counts: RefCell<Option<(u64, Vec<u64>)>>,
}

impl<T: Element> SimArray<T> {
    /// Map a new array in `sys` holding `data`.
    pub fn attach(sys: &mut System, name: &'static str, data: Vec<T>) -> Self {
        let bytes = (data.len() as u64 * T::BYTES).max(1);
        let base = sys.mmap(bytes, name);
        Self::with_base(name, base, data)
    }

    /// Map a new array backed by the hugetlbfs reservation pool
    /// (`MAP_HUGETLB`); the caller must have reserved enough pages.
    pub fn attach_hugetlb(sys: &mut System, name: &'static str, data: Vec<T>) -> Self {
        let bytes = (data.len() as u64 * T::BYTES).max(1);
        let base = sys.mmap_hugetlb(bytes, name);
        Self::with_base(name, base, data)
    }

    fn with_base(name: &'static str, base: VirtAddr, data: Vec<T>) -> Self {
        SimArray {
            name,
            base,
            data,
            reads: Cell::new(0),
            writes: Cell::new(0),
            seq_breaks: Cell::new(0),
            last_idx: Cell::new(u64::MAX),
            page_counts: RefCell::new(None),
        }
    }

    /// Start recording a per-chunk access histogram at `chunk_bytes`
    /// granularity (e.g. the huge-page size, for empirical hot-page
    /// identification). Resets any previous histogram.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn profile_pages(&self, chunk_bytes: u64) {
        assert!(chunk_bytes > 0, "chunk_bytes must be positive");
        let chunks = self.bytes().div_ceil(chunk_bytes).max(1);
        *self.page_counts.borrow_mut() = Some((chunk_bytes, vec![0; chunks as usize]));
    }

    /// The recorded per-chunk access histogram, if profiling was enabled.
    pub fn page_profile(&self) -> Option<Vec<u64>> {
        self.page_counts.borrow().as_ref().map(|(_, c)| c.clone())
    }

    /// Array name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Base virtual address.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes of the simulated layout.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * T::BYTES
    }

    /// Virtual address of element `idx`.
    pub fn addr(&self, idx: usize) -> VirtAddr {
        self.base.add(idx as u64 * T::BYTES)
    }

    fn note(&self, idx: usize, write: bool) {
        if write {
            self.writes.set(self.writes.get() + 1);
        } else {
            self.reads.set(self.reads.get() + 1);
        }
        let last = self.last_idx.get();
        let idx = idx as u64;
        if last != u64::MAX && idx.abs_diff(last) > 16 {
            self.seq_breaks.set(self.seq_breaks.get() + 1);
        }
        self.last_idx.set(idx);
        if let Some((chunk, counts)) = self.page_counts.borrow_mut().as_mut() {
            counts[(idx * T::BYTES / *chunk) as usize] += 1;
        }
    }

    /// Simulated load of element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn get(&self, sys: &mut System, idx: usize) -> T {
        self.note(idx, false);
        sys.read(self.addr(idx));
        self.data[idx]
    }

    /// Simulated store of element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set(&mut self, sys: &mut System, idx: usize, value: T) {
        self.note(idx, true);
        sys.write(self.addr(idx));
        self.data[idx] = value;
    }

    /// Batch equivalent of `count` sequential `note(start + k, write)`
    /// calls: within a run only the first element can be a sequential
    /// break (consecutive indices differ by 1), so the counters collapse
    /// to constant-time updates; the page histogram still walks elements,
    /// but only when profiling is enabled.
    fn note_run(&self, start: usize, count: usize, write: bool) {
        if count == 0 {
            return;
        }
        if write {
            self.writes.set(self.writes.get() + count as u64);
        } else {
            self.reads.set(self.reads.get() + count as u64);
        }
        let last = self.last_idx.get();
        if last != u64::MAX && (start as u64).abs_diff(last) > 16 {
            self.seq_breaks.set(self.seq_breaks.get() + 1);
        }
        self.last_idx.set((start + count - 1) as u64);
        if let Some((chunk, counts)) = self.page_counts.borrow_mut().as_mut() {
            for i in start..start + count {
                counts[(i as u64 * T::BYTES / *chunk) as usize] += 1;
            }
        }
    }

    /// Batch equivalent of per-index `note` calls for a gather (one read
    /// per index) or gather-RMW (read + write per index; the write lands
    /// on the index just read, so it can never be a sequential break).
    fn note_gather(&self, indices: &[u32], rmw: bool) {
        if indices.is_empty() {
            return;
        }
        let n = indices.len() as u64;
        self.reads.set(self.reads.get() + n);
        if rmw {
            self.writes.set(self.writes.get() + n);
        }
        let mut last = self.last_idx.get();
        let mut breaks = 0u64;
        for &i in indices {
            let idx = i as u64;
            if last != u64::MAX && idx.abs_diff(last) > 16 {
                breaks += 1;
            }
            last = idx;
        }
        self.seq_breaks.set(self.seq_breaks.get() + breaks);
        self.last_idx.set(last);
        if let Some((chunk, counts)) = self.page_counts.borrow_mut().as_mut() {
            let per_index = if rmw { 2 } else { 1 };
            for &i in indices {
                counts[(i as u64 * T::BYTES / *chunk) as usize] += per_index;
            }
        }
    }

    /// Simulated sequential read of `count` elements starting at `start`,
    /// returning the host-side slice. Equivalent to `count` calls to
    /// [`SimArray::get`] — identical per-array counters and simulated
    /// accesses — batched through [`System::access_run`].
    ///
    /// # Panics
    ///
    /// Panics if `start + count` exceeds the array length.
    pub fn scan(&self, sys: &mut System, start: usize, count: usize) -> &[T] {
        let slice = &self.data[start..start + count];
        self.note_run(start, count, false);
        sys.access_run(self.addr(start), T::BYTES, count as u64, false);
        slice
    }

    /// Simulated sequential overwrite of `count` elements starting at
    /// `start`, with values produced per index. Equivalent to `count`
    /// calls to [`SimArray::set`].
    ///
    /// # Panics
    ///
    /// Panics if `start + count` exceeds the array length.
    pub fn scan_write_with(
        &mut self,
        sys: &mut System,
        start: usize,
        count: usize,
        mut value: impl FnMut(usize) -> T,
    ) {
        assert!(start + count <= self.data.len(), "scan_write out of bounds");
        self.note_run(start, count, true);
        sys.access_run(self.addr(start), T::BYTES, count as u64, true);
        for i in start..start + count {
            self.data[i] = value(i);
        }
    }

    /// Simulated gather: one read per index, in slice order (the
    /// pointer-indirect property-array pattern). Equivalent to
    /// [`SimArray::get`] per index; values are returned in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&self, sys: &mut System, indices: &[u32]) -> Vec<T> {
        self.note_gather(indices, false);
        sys.access_gather(self.base, T::BYTES, indices, false);
        indices.iter().map(|&i| self.data[i as usize]).collect()
    }

    /// Simulated gather read-modify-write: for each index in slice order,
    /// a simulated load then store, applying `update` to the host value.
    /// Equivalent to `get` + `set` per index — duplicate indices observe
    /// earlier updates, exactly as the scalar loop would.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_update(
        &mut self,
        sys: &mut System,
        indices: &[u32],
        mut update: impl FnMut(T) -> T,
    ) {
        self.note_gather(indices, true);
        sys.access_gather_rmw(self.base, T::BYTES, indices);
        for &i in indices {
            let i = i as usize;
            self.data[i] = update(self.data[i]);
        }
    }

    /// First-touch the whole range with initialization stores (`memset`).
    pub fn populate(&mut self, sys: &mut System) {
        sys.populate(self.base, self.bytes());
    }

    /// Load the whole range from a file per the system's
    /// [`FilePlacement`](graphmem_os::FilePlacement) policy.
    pub fn load_from_file(&mut self, sys: &mut System) {
        sys.load_file(self.base, self.bytes());
    }

    /// Host-side view of the values (no simulated accesses).
    pub fn host_data(&self) -> &[T] {
        &self.data
    }

    /// `(reads, writes, sequential-breaks)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.reads.get(), self.writes.get(), self.seq_breaks.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphmem_os::SystemSpec;

    #[test]
    fn get_set_roundtrip_with_simulated_accesses() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let mut a = SimArray::attach(&mut sys, "a", vec![0u64; 1024]);
        a.set(&mut sys, 10, 7); // first touch: faults and retries
        let perf0 = sys.perf().accesses;
        a.set(&mut sys, 10, 99);
        assert_eq!(a.get(&mut sys, 10), 99);
        assert_eq!(sys.perf().accesses, perf0 + 2);
        assert_eq!(a.counters().0, 1, "one read");
        assert_eq!(a.counters().1, 2, "two writes");
    }

    #[test]
    fn addresses_are_element_strided() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let a = SimArray::attach(&mut sys, "a", vec![0u32; 16]);
        assert_eq!(a.addr(3).0, a.base().0 + 12);
        let b = SimArray::attach(&mut sys, "b", vec![0u64; 16]);
        assert_eq!(b.addr(3).0, b.base().0 + 24);
    }

    #[test]
    fn arrays_get_disjoint_regions() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let a = SimArray::attach(&mut sys, "a", vec![0u64; 4096]);
        let b = SimArray::attach(&mut sys, "b", vec![0u64; 4096]);
        assert!(a.addr(a.len() - 1) < b.base() || b.addr(b.len() - 1) < a.base());
    }

    #[test]
    fn sequential_break_tracking() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let a = SimArray::attach(&mut sys, "a", vec![0u64; 4096]);
        for i in 0..100 {
            a.get(&mut sys, i);
        }
        assert_eq!(a.counters().2, 0);
        a.get(&mut sys, 4000);
        a.get(&mut sys, 17);
        assert_eq!(a.counters().2, 2);
    }

    #[test]
    fn populate_faults_whole_array() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let mut a = SimArray::attach(&mut sys, "a", vec![0u64; 64 * 1024]);
        a.populate(&mut sys);
        let rep = sys.mapping_report(a.base());
        assert_eq!(rep.mapped_bytes, a.bytes());
    }

    #[test]
    fn page_profile_counts_per_chunk() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let a = SimArray::attach(&mut sys, "a", vec![0u64; 2048]); // 16 KiB
        a.profile_pages(4096); // 4 chunks of 512 elements
        for _ in 0..3 {
            a.get(&mut sys, 0);
        }
        a.get(&mut sys, 600); // chunk 1
        a.get(&mut sys, 2047); // chunk 3
        assert_eq!(a.page_profile().unwrap(), vec![3, 1, 0, 1]);
    }

    #[test]
    fn page_profile_absent_until_enabled() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let a = SimArray::attach(&mut sys, "a", vec![0u64; 8]);
        assert!(a.page_profile().is_none());
        a.get(&mut sys, 0);
        a.profile_pages(4096);
        a.get(&mut sys, 0);
        assert_eq!(a.page_profile().unwrap(), vec![1]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let mut sys = System::new(SystemSpec::scaled_demo());
        let a = SimArray::attach(&mut sys, "a", vec![0u64; 4]);
        a.get(&mut sys, 4);
    }
}
