//! # graphmem-workloads — graph kernels over simulated virtual memory
//!
//! The paper's three applications (§3.2) — **BFS**, **PageRank**, and
//! **SSSP** — implemented twice:
//!
//! * *simulated*: every load/store of the CSR and property arrays goes
//!   through the full [`graphmem_os::System`] translation + cache + fault
//!   pipeline via [`SimArray`], producing the TLB behaviour, page faults,
//!   and cycle costs the paper measures;
//! * *native*: plain in-memory reference twins used to verify that the
//!   simulated runs compute correct results.
//!
//! [`GraphArrays`] lays the four data structures of paper Fig. 5 (vertex
//! array, edge array, values array, property array) out in the simulated
//! address space, supporting both initialization orders the paper studies
//! (§4.3.1): *natural* (property array touched last) and *optimized*
//! (property array touched first, so it wins the huge-page race).
//!
//! ## Example
//!
//! ```
//! use graphmem_graph::Dataset;
//! use graphmem_os::{System, SystemSpec};
//! use graphmem_workloads::{AllocOrder, GraphArrays, Kernel};
//!
//! let csr = Dataset::Wiki.generate_with_scale(10);
//! let mut sys = System::new(SystemSpec::scaled_demo());
//! let mut arrays = GraphArrays::map(&mut sys, &csr, Kernel::Bfs);
//! arrays.initialize(&mut sys, AllocOrder::Natural);
//! let root = graphmem_workloads::default_root(&csr);
//! let dist = Kernel::Bfs.run_simulated(&mut sys, &mut arrays, root);
//! assert_eq!(dist, Kernel::Bfs.run_native(&csr, root));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrays;
mod kernels;
mod profile;
mod simarray;

pub use arrays::{AllocOrder, GraphArrays};
pub use kernels::{default_root, Kernel};
pub use profile::{AccessProfile, ArrayProfile};
pub use simarray::{Element, SimArray};
