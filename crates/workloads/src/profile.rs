//! Per-data-structure access profiles (the paper's Fig. 4).

/// Access statistics of one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayProfile {
    name: &'static str,
    reads: u64,
    writes: u64,
    seq_breaks: u64,
    bytes: u64,
}

impl ArrayProfile {
    /// Array name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Array size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Fraction of accesses that were *not* near-sequential (jumped more
    /// than 16 elements from the previous access): ~0 for streaming
    /// arrays, ~1 for pointer-indirect ones.
    pub fn irregularity(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.seq_breaks as f64 / a as f64
        }
    }
}

/// Profiles for all arrays of a workload instance.
#[derive(Debug, Clone)]
pub struct AccessProfile {
    arrays: Vec<ArrayProfile>,
}

impl AccessProfile {
    pub(crate) fn from_raw(raw: Vec<(&'static str, (u64, u64, u64), u64)>) -> Self {
        AccessProfile {
            arrays: raw
                .into_iter()
                .map(|(name, (reads, writes, seq_breaks), bytes)| ArrayProfile {
                    name,
                    reads,
                    writes,
                    seq_breaks,
                    bytes,
                })
                .collect(),
        }
    }

    /// All array profiles.
    pub fn arrays(&self) -> &[ArrayProfile] {
        &self.arrays
    }

    /// Profile of the array named `name`.
    pub fn array(&self, name: &str) -> Option<&ArrayProfile> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Total accesses across all arrays.
    pub fn total_accesses(&self) -> u64 {
        self.arrays.iter().map(|a| a.accesses()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accessors() {
        let p =
            AccessProfile::from_raw(vec![("edge", (100, 0, 2), 400), ("prop", (50, 50, 90), 80)]);
        assert_eq!(p.total_accesses(), 200);
        let prop = p.array("prop").unwrap();
        assert_eq!(prop.accesses(), 100);
        assert_eq!(prop.irregularity(), 0.9);
        assert!(p.array("edge").unwrap().irregularity() < 0.05);
        assert!(p.array("nope").is_none());
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = AccessProfile::from_raw(vec![("x", (0, 0, 0), 0)]);
        assert_eq!(p.array("x").unwrap().irregularity(), 0.0);
    }
}
