//! The paper's contribution in action (§5, Figs. 10–11): couple
//! degree-based preprocessing with selective THP and sweep the advised
//! fraction of the property array.
//!
//! On ID-shuffled inputs (kron) hot vertices are scattered, so huge-page
//! benefit grows ~linearly with coverage; after DBG the hot data is a
//! dense prefix and the first ~20 % of the property array captures most of
//! the win — the diminishing-returns knee of Fig. 11.
//!
//! ```sh
//! cargo run --release --bin selective_thp
//! ```

use graphmem_core::prelude::*;
use graphmem_core::sweep;
use graphmem_examples::{example_scale, print_sweep};

fn main() {
    let scale = example_scale();
    // The Fig. 10/11 condition: +3 GB-equivalent surplus, 50 % fragmented.
    let cond = MemoryCondition::fragmented(0.5);

    for dataset in [Dataset::Kron25, Dataset::Twitter] {
        let proto = Experiment::builder(dataset, Kernel::Bfs)
            .scale(scale)
            .condition(cond)
            .build()
            .expect("valid config");
        let baseline = proto.clone().policy(PagePolicy::BaseOnly).run();

        println!("\n#### {dataset} (scale {scale}), +3GB-equivalent surplus, 50% fragmentation");

        let original = sweep::selectivity(&proto, &sweep::SELECTIVITY_LEVELS);
        print_sweep(
            &format!("{dataset}: selective THP, original vertex order"),
            "s(frac)",
            &original,
            &baseline,
        );

        let dbg = sweep::selectivity(
            &proto.clone().preprocessing(Preprocessing::Dbg),
            &sweep::SELECTIVITY_LEVELS,
        );
        print_sweep(
            &format!("{dataset}: selective THP after degree-based grouping"),
            "s(frac)",
            &dbg,
            &baseline,
        );

        let knee = &dbg[1].1; // s = 20%
        println!(
            "DBG + 20% selective: {:.2}x over 4KB using huge pages for {:.2}% of memory",
            knee.speedup_over(&baseline),
            knee.huge_memory_fraction() * 100.0
        );
    }
}
