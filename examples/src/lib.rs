//! Shared helpers for the graphmem examples: scale selection and simple
//! table rendering.

use graphmem_core::RunReport;

/// Graph scale for examples: `GRAPHMEM_SCALE=tiny|small|default` (examples
/// default to `small` so they finish in seconds).
pub fn example_scale() -> u8 {
    match std::env::var("GRAPHMEM_SCALE").as_deref() {
        Ok("tiny") => 13,
        Ok("default") => 18,
        _ => 16,
    }
}

/// Render a comparison table of runs against the first entry as baseline.
pub fn print_comparison(title: &str, runs: &[(&str, &RunReport)]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>12} {:>9} {:>8} {:>8} {:>10} {:>8}",
        "configuration", "compute Mcy", "speedup", "dtlb%", "walk%", "huge-mem%", "verified"
    );
    let baseline = runs[0].1;
    for (name, r) in runs {
        println!(
            "{:<28} {:>12.2} {:>8.2}x {:>7.1}% {:>7.1}% {:>9.2}% {:>8}",
            name,
            r.compute_cycles as f64 / 1e6,
            r.speedup_over(baseline),
            r.dtlb_miss_rate() * 100.0,
            r.stlb_miss_rate() * 100.0,
            r.huge_memory_fraction() * 100.0,
            if r.verified { "yes" } else { "NO" },
        );
    }
}

/// Render a one-parameter sweep.
pub fn print_sweep(title: &str, param: &str, rows: &[(f64, RunReport)], baseline: &RunReport) {
    println!("\n== {title} ==");
    println!(
        "{:>10} {:>12} {:>9} {:>8} {:>10}",
        param, "compute Mcy", "speedup", "walk%", "huge-mem%"
    );
    for (p, r) in rows {
        println!(
            "{:>10.2} {:>12.2} {:>8.2}x {:>7.1}% {:>9.2}%",
            p,
            r.compute_cycles as f64 / 1e6,
            r.speedup_over(baseline),
            r.stlb_miss_rate() * 100.0,
            r.huge_memory_fraction() * 100.0,
        );
    }
}
