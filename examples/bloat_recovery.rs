//! Memory bloat and utilization-based demotion (paper §6 related work).
//!
//! A "sparse" application maps a large THP-backed region but only ever
//! touches a hot slice of each huge page. System-wide THP keeps the whole
//! region resident (fast, bloated); an Ingens/HawkEye-style daemon splits
//! under-utilized huge pages and reclaims the never-touched memory,
//! trading a little TLB performance for the bloat. The paper's selective
//! THP sidesteps the dilemma by only huge-backing data that earns it.
//!
//! ```sh
//! cargo run --release --bin bloat_recovery
//! ```

use graphmem_os::{PageSize, System, SystemSpec, ThpMode, UtilizationPolicy, VirtAddr};

const REGIONS: u64 = 32;
const HOT_PAGES_PER_REGION: u64 = 8; // of 64
const STEADY_ACCESSES: u64 = 500_000;

fn run(label: &str, demotion: Option<UtilizationPolicy>) {
    let mut spec = SystemSpec::scaled(128);
    spec.thp.mode = ThpMode::Always;
    spec.thp.utilization_demotion = demotion;
    let mut sys = System::new(spec);
    let huge = sys.geometry().bytes(PageSize::Huge);
    let free0 = sys.zone(1).free_frames();

    let a = sys.mmap(REGIONS * huge, "sparse_app");
    let mut hot: Vec<VirtAddr> = Vec::new();
    for r in 0..REGIONS {
        for p in 0..HOT_PAGES_PER_REGION {
            let va = a.add(r * huge + p * 4096);
            sys.write(va);
            hot.push(va);
        }
    }
    let cp = sys.checkpoint();
    let mut x = 7u64;
    for _ in 0..STEADY_ACCESSES {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sys.read(hot[(x % hot.len() as u64) as usize]);
    }
    let (cycles, perf, _) = sys.since(&cp);
    let resident_mb = (free0 - sys.zone(1).free_frames()) as f64 * 4096.0 / (1 << 20) as f64;
    let touched_mb = (REGIONS * HOT_PAGES_PER_REGION) as f64 * 4096.0 / (1 << 20) as f64;
    println!(
        "{label:<34} {:>8.2} Mcy  {:>7.1} MiB resident ({:>5.1} MiB touched)  dtlb {:>5.1}%  splits {}",
        cycles as f64 / 1e6,
        resident_mb,
        touched_mb,
        perf.dtlb_miss_rate() * 100.0,
        sys.os_stats().util_demotions
    );
}

fn main() {
    println!(
        "bloat_recovery: {REGIONS} huge regions, {HOT_PAGES_PER_REGION}/64 pages hot per region\n"
    );
    run("THP always (bloated, fast)", None);
    run(
        "THP + utilization demotion (0.25)",
        Some(UtilizationPolicy {
            threshold: 0.25,
            scan_interval_cycles: 2_000_000,
            reclaim_untouched: true,
        }),
    );
    println!("\nthe daemon converts memory bloat back into free memory at a small TLB cost;");
    println!("the paper's point (§6): with application knowledge you avoid creating the");
    println!("useless huge pages in the first place.");
}
