//! Memory-fragmentation anatomy and its effect on THP (paper §4.4,
//! Figs. 6, 8, 9).
//!
//! First renders the Fig. 6 picture directly from the simulated zone: an
//! ASCII map of pageblocks (`.` free, `H` huge page in use, `m` movable
//! fragmentation, `K` kernel/non-movable fragmentation). Then sweeps
//! non-movable fragmentation levels and shows THP performance declining
//! while the 4 KiB baseline is unaffected.
//!
//! ```sh
//! cargo run --release --bin fragmentation_study
//! ```

use graphmem_core::prelude::*;
use graphmem_core::sweep;
use graphmem_examples::{example_scale, print_sweep};
use graphmem_os::{System, SystemSpec, ThpMode};
use graphmem_physmem::Fragmenter;

fn main() {
    anatomy();

    let scale = example_scale();
    let proto = Experiment::builder(Dataset::Kron25, Kernel::Bfs)
        .scale(scale)
        .policy(PagePolicy::ThpSystemWide)
        .build()
        .expect("valid config");
    let baseline = proto.clone().policy(PagePolicy::BaseOnly).run();

    let natural = sweep::fragmentation(&proto, &sweep::FRAGMENTATION_LEVELS);
    print_sweep(
        "Linux THP vs fragmentation (natural order)",
        "frag",
        &natural,
        &baseline,
    );

    let optimized = sweep::fragmentation(
        &proto.clone().alloc_order(AllocOrder::PropertyFirst),
        &sweep::FRAGMENTATION_LEVELS,
    );
    print_sweep(
        "Linux THP vs fragmentation (property-first order)",
        "frag",
        &optimized,
        &baseline,
    );
}

/// Recreate the Fig. 6 pageblock picture on a small zone.
fn anatomy() {
    let mut spec = SystemSpec::scaled(32);
    spec.thp.mode = ThpMode::Always;
    let mut sys = System::new(spec);

    println!("pageblock anatomy ('.'=free  H=huge page  m=movable frag  K=non-movable frag)\n");
    println!("fresh boot:");
    print!("{}", sys.zone(1).snapshot().render(64));

    // Kernel pages fragment some blocks permanently.
    let _frag = Fragmenter::apply(sys.zone_mut(1), 0.25);
    // An application allocates graph data: huge pages while they last.
    let huge = sys.geometry().bytes(graphmem_os::PageSize::Huge);
    let a = sys.mmap(40 * huge, "graph_data");
    sys.populate(a, 40 * huge);

    println!("\nafter 25% non-movable fragmentation + graph allocation:");
    print!("{}", sys.zone(1).snapshot().render(64));
    let rep = sys.mapping_report(a);
    println!(
        "\ngraph data: {} huge pages, {} base pages ({} huge-page fallbacks)",
        rep.huge_pages,
        rep.base_pages,
        sys.os_stats().huge_fallbacks
    );
}
