//! Quickstart: the paper's headline result in one page of code.
//!
//! Runs BFS on a Kronecker-like power-law graph under four page-size
//! strategies on a memory-pressured machine, and prints the comparison:
//! the 4 KiB baseline, Linux's system-wide THP, and the paper's recipe —
//! degree-based grouping plus selective THP on a sliver of the property
//! array — which recovers most of the THP speedup with a few percent of
//! the huge-page memory.
//!
//! ```sh
//! cargo run --release --bin quickstart
//! GRAPHMEM_SCALE=default cargo run --release --bin quickstart
//! ```

use graphmem_core::prelude::*;
use graphmem_examples::{example_scale, print_comparison};

fn main() {
    let scale = example_scale();
    // A realistic machine: moderate pressure (~+1 GB-equivalent of slack).
    let pressured = MemoryCondition::pressured(Surplus::FractionOfWss(0.12));
    let proto = Experiment::builder(Dataset::Kron25, Kernel::Bfs)
        .scale(scale)
        .condition(pressured)
        .build()
        .expect("valid config");

    println!(
        "graphmem quickstart: BFS on {} (scale {scale}), moderate memory pressure",
        Dataset::Kron25
    );
    println!("(simulating… each configuration runs the full kernel through the MMU model)");

    let baseline = proto.clone().policy(PagePolicy::BaseOnly).run();
    let thp = proto.clone().policy(PagePolicy::ThpSystemWide).run();
    let ideal = Experiment::builder(Dataset::Kron25, Kernel::Bfs)
        .scale(scale)
        .policy(PagePolicy::ThpSystemWide)
        .build()
        .expect("valid config")
        .run(); // fresh boot, unbounded huge pages
    let selective = proto
        .clone()
        .preprocessing(Preprocessing::Dbg)
        .policy(PagePolicy::SelectiveProperty { fraction: 0.2 })
        .run();

    print_comparison(
        "BFS / kron under memory pressure",
        &[
            ("4KB pages (baseline)", &baseline),
            ("Linux THP (system-wide)", &thp),
            ("THP unbounded (fresh boot)", &ideal),
            ("DBG + selective THP (20%)", &selective),
        ],
    );

    println!(
        "\nselective THP reaches {:.0}% of unbounded-THP performance using huge pages for only {:.2}% of memory",
        100.0 * ideal.compute_cycles as f64 / selective.compute_cycles as f64,
        selective.huge_memory_fraction() * 100.0
    );
}
