//! Record once, replay everywhere: capture the memory-access trace of one
//! BFS run, then replay it against a ladder of TLB geometries in
//! milliseconds each — the paper's §3.1 claim ("even with more capacity,
//! the TLB's total coverage is still significantly smaller than the memory
//! footprint") made interactive.
//!
//! ```sh
//! cargo run --release --bin tlb_geometry_replay
//! ```

use graphmem_examples::example_scale;
use graphmem_graph::Dataset;
use graphmem_os::{System, SystemSpec};
use graphmem_vm::MemorySystem;
use graphmem_workloads::{default_root, AllocOrder, GraphArrays, Kernel};

fn main() {
    let scale = example_scale();
    let csr = Dataset::Kron25.generate_with_scale(scale);
    println!(
        "recording one BFS run on kron (scale {scale}, {} edges)…",
        csr.num_edges()
    );

    let spec = SystemSpec::scaled(((csr.num_edges() * 12) >> 20).max(64) * 3);
    let mmu_base = spec.mmu;
    let mut sys = System::new(spec);
    let mut arrays = GraphArrays::map(&mut sys, &csr, Kernel::Bfs);
    arrays.initialize(&mut sys, AllocOrder::Natural);
    sys.start_tracing();
    let root = default_root(&csr);
    Kernel::Bfs.run_simulated(&mut sys, &mut arrays, root);
    let trace = sys.take_trace();
    println!(
        "captured {} accesses; replaying against TLB ladders:\n",
        trace.len()
    );

    println!(
        "{:>14} {:>12} {:>10} {:>10}",
        "stlb_entries", "reach(KiB)", "dtlb-miss%", "walk%"
    );
    for entries in [32u32, 64, 128, 192, 256, 512, 1024] {
        let mut cfg = mmu_base;
        cfg.tlb.stlb.entries = entries;
        cfg.tlb.stlb.ways = [8u32, 12, 6, 4, 16, 2, 1]
            .into_iter()
            .find(|&w| entries % w == 0 && ((entries / w) as u64).is_power_of_two())
            .unwrap_or(entries);
        let mut mmu = MemorySystem::new(cfg);
        let c = trace.replay(&mut mmu, sys.page_table());
        println!(
            "{:>14} {:>12} {:>9.1}% {:>9.1}%",
            entries,
            entries as u64 * 4096 / 1024,
            c.dtlb_miss_rate() * 100.0,
            c.stlb_miss_rate() * 100.0
        );
    }
    println!("\neven 8x the STLB leaves the miss rates high: footprint >> reach (paper §3.1);");
    println!("page size management, not TLB growth, closes the gap.");
}
