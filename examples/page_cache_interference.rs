//! Single-use memory interference (paper §4.3): loading graph files
//! through the local page cache consumes the free memory that huge pages
//! need, exactly when the application is faulting its arrays.
//!
//! Compares three loading strategies under memory pressure:
//! buffered I/O (page cache on the local node), the paper's mitigation
//! (tmpfs bound to the remote NUMA node), and direct I/O.
//!
//! ```sh
//! cargo run --release --bin page_cache_interference
//! ```

use graphmem_core::prelude::*;
use graphmem_examples::{example_scale, print_comparison};

fn main() {
    let scale = example_scale();
    let proto = Experiment::builder(Dataset::Web, Kernel::Bfs)
        .scale(scale)
        .policy(PagePolicy::ThpSystemWide)
        .condition(MemoryCondition::pressured(Surplus::FractionOfWss(0.18)))
        .build()
        .expect("valid config");

    println!(
        "page_cache_interference: BFS on {} (scale {scale}), THP always, +18% surplus",
        Dataset::Web
    );

    let tmpfs = proto
        .clone()
        .file_placement(FilePlacement::TmpfsRemote)
        .run();
    let buffered = proto
        .clone()
        .file_placement(FilePlacement::LocalPageCache)
        .run();
    let direct = proto.clone().file_placement(FilePlacement::DirectIo).run();

    print_comparison(
        "file loading strategy under pressure",
        &[
            ("tmpfs on remote node", &tmpfs),
            ("buffered (local page cache)", &buffered),
            ("direct I/O", &direct),
        ],
    );

    println!("\ninit cycles (I/O cost lands here):");
    for (name, r) in [
        ("tmpfs", &tmpfs),
        ("buffered", &buffered),
        ("direct", &direct),
    ] {
        println!(
            "  {name:<10} {:>10.2} Mcy init, huge pages for {:>5.1}% of memory",
            r.init_cycles as f64 / 1e6,
            r.huge_memory_fraction() * 100.0
        );
    }
    println!("\nbuffered loading leaves the page cache squatting on huge-page regions");
    println!("(\"free memory that cannot be reclaimed in time\", paper §4.3).");
}
