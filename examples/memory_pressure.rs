//! Datacenter scenario: how memory pressure erodes THP gains, and how
//! graph-aware allocation ordering rescues them (paper §4.3.1, Fig. 7).
//!
//! Sweeps the free-memory surplus from oversubscribed (−6 % of WSS, the
//! swap-thrashing regime) to +35 %, comparing Linux THP with the natural
//! allocation order against the property-array-first order.
//!
//! ```sh
//! cargo run --release --bin memory_pressure
//! ```

use graphmem_core::prelude::*;
use graphmem_core::sweep;
use graphmem_examples::{example_scale, print_sweep};

fn main() {
    let scale = example_scale();
    let proto = Experiment::builder(Dataset::Twitter, Kernel::Bfs)
        .scale(scale)
        .policy(PagePolicy::ThpSystemWide)
        .build()
        .expect("valid config");

    println!(
        "memory_pressure: BFS on {} (scale {scale})",
        Dataset::Twitter
    );

    let baseline = proto.clone().policy(PagePolicy::BaseOnly).run();
    println!(
        "4KB baseline: {:.2} Mcycles (pressure barely affects it)",
        baseline.compute_cycles as f64 / 1e6
    );

    // Skip the oversubscribed point in the quick sweep unless asked; it is
    // slow by design (every access can page through swap).
    let levels: &[f64] = if std::env::var("GRAPHMEM_SWAP").is_ok() {
        &sweep::PRESSURE_LADDER
    } else {
        &sweep::PRESSURE_LADDER[1..]
    };

    let natural = sweep::pressure(&proto, levels);
    print_sweep(
        "Linux THP, natural allocation order (property array last)",
        "surplus",
        &natural,
        &baseline,
    );

    let optimized = sweep::pressure(
        &proto.clone().alloc_order(AllocOrder::PropertyFirst),
        levels,
    );
    print_sweep(
        "Linux THP, graph-optimized order (property array first)",
        "surplus",
        &optimized,
        &baseline,
    );

    let ideal = proto
        .clone()
        .condition(MemoryCondition::pressured(Surplus::Unbounded))
        .run();
    println!(
        "\nunbounded THP reference: {:.2}x over 4KB",
        ideal.speedup_over(&baseline)
    );
    println!("note how property-first ordering holds most of that speedup even at low surplus,");
    println!("while the natural order decays toward the 4KB baseline (paper Fig. 7).");
}
