//! Closed-loop page-size governance under fragmentation + pressure
//! (paper §4.4: the scenarios where static THP loses its gain).
//!
//! On a fragmented, memory-pressured machine (the paper's Fragmenter +
//! Memhog methodology), system-wide THP keeps little of its advantage:
//! fault-time huge allocations are denied for lack of contiguity and the
//! property array ends up base-paged anyway. The governor turns that
//! scenario recoverable at runtime — it measures per-region translation
//! cost each epoch, demotes cold huge mappings when promotions are being
//! denied, and promotes the measured-hot regions into the contiguity
//! those demotions (plus compaction) free up.
//!
//! ```sh
//! cargo run --release --bin governor_recovery
//! ```

use graphmem_core::prelude::*;
use graphmem_examples::{example_scale, print_comparison};

fn main() {
    // The governor promotes whole huge-page-aligned subranges, so the hot
    // property arrays must span at least a few huge pages (256 KiB at the
    // default order) for runtime promotion to have anything to grab —
    // floor the scale accordingly even under GRAPHMEM_SCALE=tiny.
    let scale = example_scale().max(16);
    // Fragmenter + Memhog: 60% non-movable fragmentation, only +10% WSS
    // of free memory, and background noise in half of every free huge
    // region — the paper's hardest §4.4 configuration.
    let condition = MemoryCondition {
        surplus: Surplus::FractionOfWss(0.10),
        fragmentation: 0.6,
        noise_occupancy: 0.5,
    };
    let proto = Experiment::builder(Dataset::Kron25, Kernel::Pagerank)
        .scale(scale)
        .condition(condition)
        .build()
        .expect("valid config");

    let base = proto.clone().policy(PagePolicy::BaseOnly).run();
    let thp = proto.clone().policy(PagePolicy::ThpSystemWide).run();
    let governed = proto
        .clone()
        .plan(
            PageSizePlan::with_policy(PagePolicy::ThpSystemWide).governed(GovernorConfig {
                epoch_cycles: 2_000_000,
                promote_cost: 0.5,
                demote_cost: 0.1,
                ..GovernorConfig::default()
            }),
        )
        .run();

    print_comparison(
        "fragmented + pressured (frag 0.6, surplus +10% WSS, noise 0.5)",
        &[
            ("4k baseline", &base),
            ("thp (static)", &thp),
            ("thp + governor", &governed),
        ],
    );

    println!(
        "\ntranslation share of compute: static thp {:.1}%, governed {:.1}%",
        thp.translation_overhead() * 100.0,
        governed.translation_overhead() * 100.0
    );
    let gov = governed.governor.as_ref().expect("governor section");
    println!(
        "governor [{}]: {} epochs, {} promotions, {} demotions, {} denied by fragmentation",
        gov.config, gov.epochs, gov.promotions, gov.demotions, gov.denied_by_fragmentation
    );
    assert!(
        governed.translation_overhead() < thp.translation_overhead(),
        "the governor must recover translation cycles static THP leaves on the table"
    );
    assert!(governed.verified && thp.verified && base.verified);
}
