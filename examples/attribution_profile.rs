//! Translation-attribution profile: which array pays for the TLB?
//!
//! Reproduces the paper's Fig. 4/5 analysis with the attribution
//! profiler: run BFS and PageRank on the Kronecker graph with 4 KiB
//! pages, charge every DTLB miss, STLB miss, page-walk cycle, and fault
//! to the data structure that triggered it, and print the per-array
//! breakdown. The pointer-indirect property array — a fraction of the
//! footprint — collects the plurality of the walk cycles, which is the
//! observation that justifies backing only it with huge pages (§5.2).
//!
//! ```sh
//! cargo run --release --bin attribution_profile
//! GRAPHMEM_SCALE=default cargo run --release --bin attribution_profile
//! ```

use graphmem_core::prelude::*;
use graphmem_examples::example_scale;

/// Walk cycles summed over the kernel's property array(s) — PageRank
/// keeps two ("property_array" and "property_array_next").
fn property_walk_cycles(attr: &AttributionReport) -> u64 {
    attr.regions
        .iter()
        .filter(|r| r.name.starts_with("property_array"))
        .map(|r| r.counters.walk_cycles_total())
        .sum()
}

/// The largest walk-cycle contributor among the non-property arrays.
fn top_other_walk_cycles(attr: &AttributionReport) -> u64 {
    attr.regions
        .iter()
        .filter(|r| !r.name.starts_with("property_array"))
        .map(|r| r.counters.walk_cycles_total())
        .max()
        .unwrap_or(0)
}

fn main() {
    // Below scale 16 the property array still fits in the simulated STLB's
    // reach and the effect this example demonstrates disappears.
    let scale = example_scale().max(16);
    println!(
        "graphmem attribution profile: {} at scale {scale}, 4 KiB pages",
        Dataset::Kron25
    );

    for kernel in [Kernel::Bfs, Kernel::Pagerank] {
        let report = Experiment::builder(Dataset::Kron25, kernel)
            .scale(scale)
            .policy(PagePolicy::BaseOnly)
            .build()
            .expect("valid config")
            .attribution(true)
            .run();
        assert!(report.verified, "{kernel} produced a wrong result");
        let attr = report
            .attribution
            .as_ref()
            .expect("attribution was enabled");

        println!("\n== {kernel} ==");
        print!("{}", attr.render_table());

        let prop = property_walk_cycles(attr);
        let other = top_other_walk_cycles(attr);
        let footprint = attr
            .regions
            .iter()
            .filter(|r| r.name.starts_with("property_array"))
            .map(|r| r.mapped_bytes)
            .sum::<u64>() as f64
            / report.footprint_bytes.max(1) as f64;
        println!(
            "property array(s): {:.1}% of footprint, {:.1}% of attributed walk cycles",
            100.0 * footprint,
            100.0 * attr.walk_cycle_share("property_array")
                + 100.0 * attr.walk_cycle_share("property_array_next"),
        );
        assert!(
            prop > other,
            "{kernel}: property arrays must hold the walk-cycle plurality \
             ({prop} vs top other {other})"
        );
    }
    println!("\nproperty arrays dominate translation cost in every kernel: huge-page them first.");
}
