#!/bin/bash
# Bench regression gate for the page-run translation fast path.
#
# Reads the committed smoke-scale throughput baseline
# (`fig01_accesses_per_s_fastpath` in BENCH_fastpath_smoke.json — recorded
# by the same tiny-grid smoke run this script performs, so the comparison
# is same-scale), re-measures it, and fails when the fresh number regresses
# more than 25% below the committed one. CI runners are slower and noisier
# than the development host that recorded the baseline, so the floor is
# deliberately loose: it catches an accidental return to per-element
# translation (a multi-x cliff), not single-digit noise. Override the floor
# fraction with GRAPHMEM_GATE_FLOOR.
set -eu
cd "$(dirname "$0")"

extract() {
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -1 | cut -d: -f2
}

baseline=$(extract BENCH_fastpath_smoke.json fig01_accesses_per_s_fastpath)
[ -n "$baseline" ] || { echo "no committed baseline in BENCH_fastpath_smoke.json"; exit 1; }

# The bench overwrites BENCH_fastpath.json in the working directory;
# stash the committed record and restore it so the gate never dirties
# the tree.
cp BENCH_fastpath.json BENCH_fastpath.committed.json
trap 'mv -f BENCH_fastpath.committed.json BENCH_fastpath.json' EXIT

GRAPHMEM_SCALE=tiny cargo bench -p graphmem-bench --bench bench_fastpath -- --smoke

current=$(extract BENCH_fastpath.json fig01_accesses_per_s_fastpath)
[ -n "$current" ] || { echo "smoke bench produced no throughput figure"; exit 1; }

awk -v c="$current" -v b="$baseline" -v f="${GRAPHMEM_GATE_FLOOR:-0.75}" 'BEGIN {
  floor = f * b
  printf "fast-path throughput: %.0f accesses/s (committed %.0f, floor %.0f)\n", c, b, floor
  if (c >= floor) { print "bench gate: OK"; exit 0 }
  print "bench gate: REGRESSION — fast path lost more than 25% throughput"
  exit 1
}'
